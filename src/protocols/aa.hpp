// ΠAA (Section 5): the paper's hybrid D-dimensional Approximate Agreement
// protocol. Secure for ts corruptions under synchrony and ta <= ts under
// asynchrony whenever (D + 1) ts + ta < n (Theorem 5.19).
//
// Structure:
//   Πinit   -> (T, v0): iteration estimate + starting value;
//   loop    -> ΠAA-it via one ΠoBC instance per iteration; the new value is
//              the safe-area diameter midpoint (aa_iteration.hpp);
//   halting -> at it == T a party reliably broadcasts (halt, it); a party
//              outputs v_{it_h} where it_h is the (ts+1)-th smallest halt
//              iteration received, once ts + 1 halts for earlier iterations
//              are in — at least one of them honest.
//
// An AaParty is a sim::IParty and runs unmodified on the discrete-event
// simulator and the thread transport.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "geometry/vec.hpp"
#include "protocols/codec.hpp"
#include "protocols/init.hpp"
#include "protocols/obc.hpp"
#include "protocols/params.hpp"
#include "protocols/rbc.hpp"
#include "sim/env.hpp"

namespace hydra::protocols {

class AaParty : public sim::IParty {
 public:
  AaParty(Params params, geo::Vec input);

  // IParty
  void start(Env& env) override;
  void on_message(Env& env, PartyId from, const Message& msg) override;
  void on_timer(Env& env, std::uint64_t timer_id) override;

  // Observers -------------------------------------------------------------

  [[nodiscard]] bool has_output() const noexcept { return output_.has_value(); }
  [[nodiscard]] const geo::Vec& output() const { return *output_; }

  /// T as estimated by Πinit (0 until Πinit completes).
  [[nodiscard]] std::uint64_t estimate() const noexcept { return big_t_; }

  /// v0, v1, ... — the value after each completed iteration (v0 at index 0).
  [[nodiscard]] const std::vector<geo::Vec>& value_history() const noexcept {
    return values_;
  }

  /// Local completion time of each history entry: times()[0] is when Πinit
  /// output, times()[i] when iteration i's value was adopted. Used by the
  /// synchronization tests (Lemma 5.20) and the complexity bench.
  [[nodiscard]] const std::vector<Time>& value_times() const noexcept {
    return value_times_;
  }

  /// The iteration it_h whose value was output (0 until output).
  [[nodiscard]] std::uint32_t output_iteration() const noexcept { return output_iter_; }

  /// Local time at which the output was produced.
  [[nodiscard]] Time output_time() const noexcept { return output_time_; }

  [[nodiscard]] const Params& params() const noexcept { return params_; }
  [[nodiscard]] const geo::Vec& input() const noexcept { return input_; }

 private:
  void on_rbc_deliver(Env& env, const InstanceKey& key, const Bytes& payload);
  void on_init_output(Env& env, const InitInstance::Output& out);
  void on_obc_output(Env& env, std::uint32_t iteration, const PairList& m);

  /// Evaluates the ΠAA main-loop guards (lines 5-11).
  void advance(Env& env);

  ObcInstance& obc(std::uint32_t iteration);

  /// Sanity bound on iteration coordinates accepted from the network; honest
  /// parties never get remotely close, and it stops a Byzantine flood of
  /// far-future instance keys from exhausting memory.
  static constexpr std::uint32_t kMaxIteration = 1u << 20;

  Params params_;
  geo::Vec input_;

  RbcMux mux_;
  InitInstance init_;
  std::map<std::uint32_t, ObcInstance> obcs_;

  // Main-loop state.
  std::uint64_t big_t_ = 0;                     // T from Πinit
  std::uint32_t it_ = 0;                        // current iteration, 0 = in Πinit
  Time iter_start_ = 0;
  std::vector<geo::Vec> values_;                // v_0 .. v_it
  std::vector<Time> value_times_;               // adoption time of each
  std::map<std::uint32_t, geo::Vec> iter_results_;  // OBC-produced v_it pending
  std::map<PartyId, std::uint32_t> halts_;      // smallest halt iteration per sender
  bool sent_halt_ = false;

  std::optional<geo::Vec> output_;
  std::uint32_t output_iter_ = 0;
  Time output_time_ = 0;
};

}  // namespace hydra::protocols
