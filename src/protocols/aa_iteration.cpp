#include "protocols/aa_iteration.hpp"

#include <atomic>

#include "common/assert.hpp"
#include "domain/domain.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"

namespace hydra::protocols {
namespace {

// The fallback count lives in the run's obs::Context when one is installed
// (parallel sweeps run many isolated counters at once) and in a process-wide
// slot otherwise. The domain layer cannot see obs, so it reports fallbacks
// in AggregateResult and this wrapper notes them.
void note_fallback() {
  obs::safe_area_fallback_slot().fetch_add(1);
  if (obs::enabled()) {
    obs::registry().counter("aa.safe_area_fallbacks").inc();
  }
}

}  // namespace

std::uint64_t safe_area_fallback_count() noexcept {
  return obs::safe_area_fallback_slot().load();
}

geo::Vec compute_new_value(const Params& params, const PairList& m) {
  // Wall-clock timing of the geometry kernel lives in the phase profiler
  // ("aa.safe_area", with the geo.* kernels as children), which exports to
  // the perf JSON side-channel only — so the registry snapshot, like the
  // trace, is byte-deterministic per (spec, seed). Only the deterministic
  // call count stays a registry metric.
  HYDRA_PROF_SCOPE("aa.safe_area");
  if (obs::enabled()) obs::registry().counter("aa.safe_area_calls").inc();

  HYDRA_ASSERT(m.size() >= params.n - params.ts);
  HYDRA_ASSERT(m.size() <= params.n);
  const domain::AggregateSpec spec{
      params.n, params.ts, params.ta,
      params.aggregation == Aggregation::kCentroid, params.safe_opts};
  const auto values = values_of(m);
  auto result = domain::resolve(params.domain).aggregate(spec, values);
  for (std::uint32_t i = 0; i < result.fallbacks; ++i) note_fallback();
  return std::move(result.value);
}

}  // namespace hydra::protocols
