#include "protocols/aa_iteration.hpp"

#include <algorithm>
#include <atomic>

#include "common/assert.hpp"
#include "common/combinatorics.hpp"
#include "geometry/convex.hpp"
#include "geometry/safe_area.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"

namespace hydra::protocols {
namespace {

// The fallback count lives in the run's obs::Context when one is installed
// (parallel sweeps run many isolated counters at once) and in a process-wide
// slot otherwise.
void note_fallback() {
  obs::safe_area_fallback_slot().fetch_add(1);
  if (obs::enabled()) {
    obs::registry().counter("aa.safe_area_fallbacks").inc();
  }
}

geo::Vec compute_new_value_impl(const Params& params, const PairList& m);

}  // namespace

std::uint64_t safe_area_fallback_count() noexcept {
  return obs::safe_area_fallback_slot().load();
}

geo::Vec compute_new_value(const Params& params, const PairList& m) {
  // Wall-clock timing of the geometry kernel lives in the phase profiler
  // ("aa.safe_area", with the geo.* kernels as children), which exports to
  // the perf JSON side-channel only — so the registry snapshot, like the
  // trace, is byte-deterministic per (spec, seed). Only the deterministic
  // call count stays a registry metric.
  HYDRA_PROF_SCOPE("aa.safe_area");
  if (obs::enabled()) obs::registry().counter("aa.safe_area_calls").inc();
  return compute_new_value_impl(params, m);
}

namespace {

geo::Vec compute_new_value_impl(const Params& params, const PairList& m) {
  HYDRA_ASSERT(m.size() >= params.n - params.ts);
  HYDRA_ASSERT(m.size() <= params.n);
  const std::size_t k = m.size() - (params.n - params.ts);
  const std::size_t t = std::max(k, params.ta);
  const auto values = values_of(m);

  const auto pick = [&params](const geo::SafeArea& sa) {
    return params.aggregation == Aggregation::kCentroid ? sa.centroid_rule()
                                                        : sa.midpoint_rule();
  };

  auto opts = params.safe_opts;
  const auto sa = geo::SafeArea::compute(values, t, opts);
  if (auto v = pick(sa)) return *v;

  // Lemma 5.5 says this is unreachable mathematically; numerically the exact
  // kernel can lose a measure-zero intersection. Retry looser, then take an
  // LP witness.
  for (const double tol : {1e-10, 1e-8}) {
    opts.clip_tol = tol;
    const auto relaxed = geo::SafeArea::compute(values, t, opts);
    if (auto v = pick(relaxed)) {
      note_fallback();
      return *v;
    }
  }

  std::vector<std::vector<geo::Vec>> hulls;
  for_each_combination(values.size(), t, [&](const std::vector<std::size_t>& removed) {
    const auto kept = complement_indices(values.size(), removed);
    std::vector<geo::Vec> h;
    h.reserve(kept.size());
    for (auto i : kept) h.push_back(values[i]);
    hulls.push_back(std::move(h));
  });
  const auto witness = geo::intersection_point(hulls, 1e-9);
  HYDRA_ASSERT_MSG(witness.has_value(),
                   "safe area empty despite Lemma 5.5 preconditions");
  note_fallback();
  return *witness;
}

}  // namespace

}  // namespace hydra::protocols
