// Protocol parameters and the paper's timing constants.
#pragma once

#include <cstddef>

#include "common/types.hpp"
#include "domain/domain.hpp"
#include "geometry/safe_area.hpp"

namespace hydra::protocols {

/// How ΠAA-it turns a safe area into the new value.
enum class Aggregation {
  kDiameterMidpoint,  ///< the paper's rule: midpoint of the diameter pair
  kCentroid,          ///< ablation: mean of the extreme points (no proven
                      ///< contraction factor; measured in
                      ///< bench_aggregation_rules)
};

/// Static parameters of a ΠAA run, shared by every party.
struct Params {
  std::size_t n = 4;    ///< number of parties
  std::size_t ts = 1;   ///< corruption bound under synchrony
  std::size_t ta = 0;   ///< corruption bound under asynchrony (ta <= ts)
  std::size_t dim = 2;  ///< D, the dimension of the value space
  double eps = 1e-3;    ///< target agreement distance (epsilon)
  Duration delta = 1000;  ///< the public synchrony bound Delta, in ticks

  geo::SafeAreaOptions safe_opts{};

  /// Aggregation rule used by ΠAA-it and the Πinit estimates. All parties
  /// must agree on it (it is part of the protocol definition).
  Aggregation aggregation = Aggregation::kDiameterMidpoint;

  /// 0 (default): estimate the sufficient iteration count with Πinit.
  /// > 0: skip Πinit and run exactly this many iterations starting from the
  /// raw input — the "known input bounds" assumption of [Ghinea et al. 22],
  /// used by the fixed-iteration baseline and the Πinit ablation.
  std::uint64_t fixed_iterations = 0;

  /// Test-only fault injection: when non-zero, every aggregated iteration
  /// value is shifted by test_faulty_escape * (1 + party id) along the first
  /// coordinate, deliberately breaking the safe-area guarantee. Exists to
  /// prove the validity and contraction invariant monitors (obs/monitor.hpp)
  /// actually fire; never set outside tests.
  double test_faulty_escape = 0.0;

  /// The value domain the run operates over. nullptr means Euclidean R^D —
  /// the default everywhere, so pre-domain-layer call sites behave
  /// byte-identically. Non-owning: registered domains live for the process.
  const hydra::domain::ValueDomain* domain = nullptr;

  // Timing constants, in units of Delta.
  static constexpr int kCRbc = 3;       ///< Theorem 4.2: c_rBC
  static constexpr int kCRbcCond = 2;   ///< Theorem 4.2: c'_rBC
  static constexpr int kCObc = kCRbc + kCRbcCond;        ///< Theorem 4.4: c_oBC = 5
  static constexpr int kCAaIt = kCObc;                   ///< Section 5: c_AA-it = 5
  static constexpr int kCInit = 2 * kCRbc + kCRbcCond;   ///< Theorem 5.18: c_init = 8

  /// The domain's feasibility condition on (n, ts, ta, D). For Euclid this
  /// is the paper's Theorem 5.19, (D+1) ts + ta < n.
  /// NOTE: the reliable-broadcast substrate (Bracha) additionally needs
  /// n > 3 ts, which is implied whenever D >= 2; for D = 1 the paper uses a
  /// PKI to reach optimal resilience — this library's D = 1 support is
  /// therefore limited to n > 3 ts (documented in README).
  [[nodiscard]] bool feasible() const noexcept {
    return hydra::domain::resolve(domain).feasible(n, ts, ta, dim);
  }

  [[nodiscard]] std::size_t quorum() const noexcept { return n - ts; }
};

}  // namespace hydra::protocols
