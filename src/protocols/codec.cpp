#include "protocols/codec.hpp"

#include <algorithm>
#include <cmath>

namespace hydra::protocols {
namespace {

bool finite_vec(const geo::Vec& v) {
  for (std::size_t d = 0; d < v.dim(); ++d) {
    if (!std::isfinite(v[d])) return false;
  }
  return true;
}

}  // namespace

Bytes encode_value(const geo::Vec& v) {
  Writer w;
  w.f64_vec(v.coords());
  return w.take();
}

std::optional<geo::Vec> decode_value(const Bytes& data, std::size_t dim,
                                     const hydra::domain::ValueDomain* dom) {
  Reader r(data);
  auto coords = r.f64_vec(static_cast<std::uint32_t>(dim));
  if (!r.ok() || !r.at_end() || coords.size() != dim) return std::nullopt;
  geo::Vec v(std::move(coords));
  if (!finite_vec(v)) return std::nullopt;
  if (dom != nullptr && !dom->validate(v)) return std::nullopt;
  return v;
}

Bytes encode_pairs(const PairList& pairs) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(pairs.size()));
  for (const auto& [party, value] : pairs) {
    w.u32(party);
    w.f64_vec(value.coords());
  }
  return w.take();
}

std::optional<PairList> decode_pairs(const Bytes& data, std::size_t dim,
                                     std::size_t n,
                                     const hydra::domain::ValueDomain* dom) {
  Reader r(data);
  const std::uint32_t count = r.u32();
  if (!r.ok() || count > n) return std::nullopt;
  PairList pairs;
  pairs.reserve(count);
  std::set<PartyId> seen;
  for (std::uint32_t i = 0; i < count; ++i) {
    const PartyId party = r.u32();
    auto coords = r.f64_vec(static_cast<std::uint32_t>(dim));
    if (!r.ok() || party >= n || coords.size() != dim) return std::nullopt;
    geo::Vec v(std::move(coords));
    if (!finite_vec(v)) return std::nullopt;
    if (dom != nullptr && !dom->validate(v)) return std::nullopt;
    if (!seen.insert(party).second) return std::nullopt;
    pairs.emplace_back(party, std::move(v));
  }
  if (!r.at_end()) return std::nullopt;
  std::sort(pairs.begin(), pairs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return pairs;
}

Bytes encode_party_set(const std::set<PartyId>& parties) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(parties.size()));
  for (PartyId p : parties) w.u32(p);
  return w.take();
}

std::optional<std::set<PartyId>> decode_party_set(const Bytes& data, std::size_t n) {
  Reader r(data);
  const std::uint32_t count = r.u32();
  if (!r.ok() || count > n) return std::nullopt;
  std::set<PartyId> out;
  for (std::uint32_t i = 0; i < count; ++i) {
    const PartyId p = r.u32();
    if (!r.ok() || p >= n) return std::nullopt;
    if (!out.insert(p).second) return std::nullopt;
  }
  if (!r.at_end()) return std::nullopt;
  return out;
}

std::vector<geo::Vec> values_of(const PairList& pairs) {
  std::vector<geo::Vec> values;
  values.reserve(pairs.size());
  for (const auto& [party, value] : pairs) values.push_back(value);
  return values;
}

}  // namespace hydra::protocols
