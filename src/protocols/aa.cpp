#include "protocols/aa.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"
#include "protocols/aa_iteration.hpp"
#include "protocols/keys.hpp"

namespace hydra::protocols {

AaParty::AaParty(Params params, geo::Vec input)
    : params_(params),
      input_(std::move(input)),
      mux_(params_,
           [this](Env& env, const InstanceKey& key, const Bytes& payload) {
             on_rbc_deliver(env, key, payload);
           }),
      init_(params_, &mux_) {
  HYDRA_ASSERT_MSG(params_.feasible(),
                   "Params violate (D+1) ts + ta < n (or n <= 3 ts)");
  HYDRA_ASSERT(input_.dim() == params_.dim);
  init_.on_output = [this](Env& env, const InitInstance::Output& out) {
    on_init_output(env, out);
  };
}

void AaParty::start(Env& env) {
  if (params_.fixed_iterations > 0) {
    // Known-bounds mode: the caller supplied a sufficient iteration count,
    // so Πinit is skipped and v0 is the raw input.
    on_init_output(env, InitInstance::Output{params_.fixed_iterations, input_});
    return;
  }
  init_.start(env, input_);
}

ObcInstance& AaParty::obc(std::uint32_t iteration) {
  auto it = obcs_.find(iteration);
  if (it == obcs_.end()) {
    it = obcs_.emplace(iteration, ObcInstance(params_, iteration, &mux_)).first;
    it->second.on_output = [this, iteration](Env& env, const PairList& m) {
      on_obc_output(env, iteration, m);
    };
  }
  return it->second;
}

void AaParty::on_message(Env& env, PartyId from, const Message& msg) {
  // Validate key coordinates before any instance is created: a Byzantine
  // flood of exotic keys must not allocate unbounded state.
  const auto& key = msg.key;
  switch (key.tag) {
    case kRbcInitValue:
    case kRbcInitReport:
      if (key.a >= params_.n || key.b != 0) return;
      break;
    case kRbcObcValue:
    case kRbcHalt:
      if (key.a >= params_.n || key.b == 0 || key.b > kMaxIteration) return;
      break;
    case kObcReport:
      if (key.b == 0 || key.b > kMaxIteration) return;
      break;
    case kInitWitnessSet:
      if (key.a != 0 || key.b != 0) return;
      break;
    default:
      return;
  }

  if (msg.kind <= kRbcReady) {
    mux_.handle(env, from, msg);
    return;
  }
  if (msg.kind != kDirect) return;

  switch (key.tag) {
    case kObcReport:
      obc(key.b).on_report(env, from, msg.payload);
      break;
    case kInitWitnessSet:
      init_.on_witness_set(env, from, msg.payload);
      break;
    default:
      break;
  }
  advance(env);
}

void AaParty::on_rbc_deliver(Env& env, const InstanceKey& key, const Bytes& payload) {
  HYDRA_PROF_SCOPE("aa.rbc");
  switch (key.tag) {
    case kRbcInitValue:
      init_.on_rbc_value(env, key.a, payload);
      break;
    case kRbcInitReport:
      init_.on_rbc_report(env, key.a, payload);
      break;
    case kRbcObcValue:
      obc(key.b).on_rbc_value(env, key.a, payload);
      break;
    case kRbcHalt: {
      // Smallest halt iteration per sender is binding; a Byzantine party
      // reliably broadcasting several halts only makes its single vote more
      // conservative.
      auto [it, inserted] = halts_.emplace(key.a, key.b);
      if (!inserted) it->second = std::min(it->second, key.b);
      break;
    }
    default:
      break;
  }
  advance(env);
}

void AaParty::on_timer(Env& env, std::uint64_t /*timer_id*/) {
  HYDRA_PROF_SCOPE("aa.timer");
  // Timers exist only to re-evaluate time guards at their thresholds; the
  // timer phase makes boundary guards inclusive (see ObcInstance::step).
  init_.step(env, /*at_timer=*/true);
  for (auto& [iteration, instance] : obcs_) instance.step(env, /*at_timer=*/true);
  advance(env);
}

void AaParty::on_init_output(Env& env, const InitInstance::Output& out) {
  HYDRA_PROF_SCOPE("aa.init");
  HYDRA_ASSERT(it_ == 0);
  big_t_ = out.iterations;
  values_.push_back(out.v0);
  value_times_.push_back(env.now());
  it_ = 1;
  iter_start_ = env.now();
  if (obs::enabled()) {
    obs::registry().counter("aa.round_start").inc();
    if (auto* tr = obs::trace()) tr->round_start(env.now(), env.self(), 1);
    if (auto* mon = obs::monitors()) {
      mon->on_value(env.now(), env.self(), 0, out.v0);
    }
  }
  obc(1).start(env, out.v0);
  env.set_timer(iter_start_ + Params::kCAaIt * params_.delta, 0);
}

void AaParty::on_obc_output(Env& env, std::uint32_t iteration, const PairList& m) {
  HYDRA_PROF_SCOPE("aa.obc");
  geo::Vec v = compute_new_value(params_, m);
  if (params_.test_faulty_escape != 0.0) {
    // Party-dependent shift so the faulty values both escape the honest hull
    // (validity) and spread apart (contraction) — see Params.
    v[0] += params_.test_faulty_escape * (1.0 + static_cast<double>(env.self()));
  }
  iter_results_.emplace(iteration, std::move(v));
  advance(env);
}

void AaParty::advance(Env& env) {
  HYDRA_PROF_SCOPE("aa.aggregate");
  // ΠAA lines 5-11. Loop because completing iteration `it` can immediately
  // enable iteration it+1 whose OBC result is already buffered (asynchrony).
  //
  // The halt check (lines 8-10) is evaluated continuously rather than only
  // upon obtaining the current iteration's ΠAA-it output: Lemma 5.21 states
  // that a party must be able to output in iteration it+1 even when that
  // iteration's ΠAA-it never completes (parties that already output stop
  // joining, which can push ΠoBC below its quorum). Gating the check on the
  // iteration output would deadlock exactly that scenario. The output value
  // v_{it_h} always comes from an iteration this party completed (it_h < it),
  // so the produced values are identical to the paper's.
  while (!output_ && it_ >= 1) {
    // Lines 8-10: output the (ts+1)-th smallest halt iteration's value.
    // Only halts for strictly earlier iterations count; the (ts+1)-th
    // smallest of those equals the (ts+1)-th smallest received overall.
    std::vector<std::uint32_t> halt_iters;
    halt_iters.reserve(halts_.size());
    for (const auto& [sender, halt_it] : halts_) {
      if (halt_it < it_) halt_iters.push_back(halt_it);
    }
    if (halt_iters.size() >= params_.ts + 1) {
      std::sort(halt_iters.begin(), halt_iters.end());
      const std::uint32_t it_h = halt_iters[params_.ts];
      HYDRA_ASSERT(it_h < it_);
      output_ = values_[it_h];  // values_[i] == v_i; v_0 .. v_{it-1} are known
      output_iter_ = it_h;
      output_time_ = env.now();
      if (obs::enabled()) {
        obs::registry().counter("aa.output").inc();
        if (auto* tr = obs::trace()) {
          tr->state(env.now(), env.self(), "aa", "output", 0, it_h);
        }
      }
      return;
    }

    // Line 5: at least c_AA-it * Delta within the iteration.
    if (env.now() < iter_start_ + Params::kCAaIt * params_.delta) return;
    // Line 6: the iteration's ΠAA-it output.
    const auto result = iter_results_.find(it_);
    if (result == iter_results_.end()) return;

    const geo::Vec v_it = result->second;
    values_.push_back(v_it);
    value_times_.push_back(env.now());
    if (obs::enabled()) {
      obs::registry().counter("aa.round_end").inc();
      if (auto* tr = obs::trace()) tr->round_end(env.now(), env.self(), it_);
      if (auto* mon = obs::monitors()) {
        mon->on_value(env.now(), env.self(), it_, v_it);
      }
    }

    // Line 7: announce our own halt point.
    if (!sent_halt_ && it_ == big_t_) {
      sent_halt_ = true;
      if (obs::enabled()) {
        obs::registry().counter("aa.halt_sent").inc();
        if (auto* tr = obs::trace()) {
          tr->state(env.now(), env.self(), "aa", "halt", 0, it_);
        }
      }
      mux_.broadcast(env, InstanceKey{kRbcHalt, env.self(), it_}, Bytes{});
    }

    // Line 11: next iteration.
    it_ += 1;
    iter_start_ = env.now();
    if (obs::enabled()) {
      obs::registry().counter("aa.round_start").inc();
      if (auto* tr = obs::trace()) tr->round_start(env.now(), env.self(), it_);
    }
    obc(it_).start(env, v_it);
    env.set_timer(iter_start_ + Params::kCAaIt * params_.delta, 0);
  }
}

}  // namespace hydra::protocols
