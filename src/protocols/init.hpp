// Πinit (Section 5): estimates a sufficient iteration count T and a starting
// value v0 inside the honest inputs' convex hull.
//
// Structure (witness technique of [1] extended with double-witnesses):
//   1. reliably broadcast the input value;
//   2. after c_rBC * Delta and |M| >= n - ts, reliably broadcast the report M;
//   3. a reporter P' whose report is a subset of our own M becomes a witness;
//      its estimation v_P' is computed from safe_max(ta, k_P')(M_P') with the
//      ΠAA-it midpoint rule (deterministic: all parties derive the same
//      v_P' from the same reliably-broadcast report);
//   4. after 2 c_rBC * Delta and |W| >= n - ts, send the witness set W to all;
//   5. a party P' whose witness set is a subset of our own W becomes a
//      double-witness; n - ts double-witnesses guarantee n - ts common
//      estimations with every honest party (Lemma 6.18);
//   6. after (2 c_rBC + c'_rBC) * Delta and |W2| >= n - ts, output
//      v0 = midpoint rule over safe_max(ta, k)(I_e) and
//      T  = ceil(log_sqrt(7/8)(eps / delta_max(I_e))), clamped to >= 1.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>

#include "geometry/vec.hpp"
#include "protocols/codec.hpp"
#include "protocols/params.hpp"
#include "protocols/rbc.hpp"

namespace hydra::protocols {

class InitInstance {
 public:
  struct Output {
    std::uint64_t iterations = 0;  ///< T
    geo::Vec v0;
  };
  using OutputFn = std::function<void(Env&, const Output&)>;

  InitInstance(const Params& params, RbcMux* mux) : params_(params), mux_(mux) {}

  /// Joins Πinit with input `v`.
  void start(Env& env, const geo::Vec& input);

  /// Value reliably delivered from `sender` (tag kRbcInitValue).
  void on_rbc_value(Env& env, PartyId sender, const Bytes& payload);

  /// Report reliably delivered from `sender` (tag kRbcInitReport).
  void on_rbc_report(Env& env, PartyId sender, const Bytes& payload);

  /// Witness set received directly from `from` (tag kInitWitnessSet).
  void on_witness_set(Env& env, PartyId from, const Bytes& payload);

  /// Guard re-evaluation; see ObcInstance::step for the `at_timer`
  /// boundary semantics.
  void step(Env& env, bool at_timer = false);

  [[nodiscard]] bool has_output() const noexcept { return output_.has_value(); }
  [[nodiscard]] const Output& output() const { return *output_; }

  /// Observers for tests.
  [[nodiscard]] std::size_t witnesses() const noexcept { return w_.size(); }
  [[nodiscard]] std::size_t double_witnesses() const noexcept { return w2_.size(); }
  [[nodiscard]] const PairList& estimations() const noexcept { return ie_; }

  OutputFn on_output;

 private:
  Params params_;
  RbcMux* mux_;

  bool started_ = false;
  Time tau_start_ = 0;
  bool sent_report_ = false;
  bool sent_witness_set_ = false;

  std::map<PartyId, geo::Vec> m_;                  // M
  std::map<PartyId, PairList> pending_reports_;    // reliably delivered, unverified
  PairList ie_;                                    // I_e, sorted by party id
  std::set<PartyId> w_;                            // W (witnesses)
  std::map<PartyId, std::set<PartyId>> pending_witness_sets_;
  std::set<PartyId> w2_;                           // W2 (double-witnesses)
  std::optional<Output> output_;
};

/// T = ceil(log_sqrt(7/8)(eps / diam)) clamped to >= 1; 1 when diam <= eps
/// (already agreed) or diam == 0.
[[nodiscard]] std::uint64_t sufficient_iterations(double eps, double diam);

}  // namespace hydra::protocols
