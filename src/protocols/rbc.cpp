#include "protocols/rbc.hpp"

#include <utility>

#include "common/assert.hpp"
#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "obs/trace.hpp"

namespace hydra::protocols {
namespace {

/// Trace/metrics hook for RBC state transitions (send/echo/ready/deliver).
void note_transition(const Env& env, const InstanceKey& key, const char* what) {
  if (!obs::enabled()) return;
  obs::registry().counter(std::string("rbc.") + what).inc();
  if (auto* tr = obs::trace()) {
    tr->state(env.now(), env.self(), "rbc", what, key.a, key.b);
  }
}

}  // namespace

void RbcInstance::broadcast(Env& env, Bytes payload) {
  HYDRA_ASSERT_MSG(key_.a == env.self(), "only the designated sender may broadcast");
  note_transition(env, key_, "send");
  Message msg{key_, kRbcSend, std::move(payload)};
  env.broadcast(msg);
}

void RbcInstance::send_echo(Env& env, const Bytes& payload) {
  sent_echo_ = true;
  note_transition(env, key_, "echo");
  env.broadcast(Message{key_, kRbcEcho, payload});
}

void RbcInstance::send_ready(Env& env, const Bytes& payload) {
  sent_ready_ = true;
  note_transition(env, key_, "ready");
  env.broadcast(Message{key_, kRbcReady, payload});
}

bool RbcInstance::on_message(Env& env, PartyId from, const Message& msg) {
  const std::size_t n = params_.n;
  const std::size_t t = params_.ts;

  switch (msg.kind) {
    case kRbcSend: {
      // Only the designated sender's initial send counts; an authenticated
      // channel means `from` cannot be forged.
      if (from != key_.a) return false;
      if (!sent_echo_) send_echo(env, msg.payload);
      return false;
    }
    case kRbcEcho: {
      // First echo per voter is binding; equivocating echoes are dropped.
      if (!echo_voters_.insert(from).second) return false;
      auto& voters = echoes_[msg.payload];
      voters.insert(from);
      if (voters.size() >= n - t && !sent_ready_) send_ready(env, msg.payload);
      return false;
    }
    case kRbcReady: {
      if (!ready_voters_.insert(from).second) return false;
      auto& voters = readies_[msg.payload];
      voters.insert(from);
      if (voters.size() >= t + 1 && !sent_ready_) send_ready(env, msg.payload);
      if (voters.size() >= n - t && !delivered_) {
        delivered_ = true;
        output_ = msg.payload;
        note_transition(env, key_, "deliver");
        if (obs::enabled()) {
          if (auto* mon = obs::monitors()) {
            mon->on_rbc_deliver(env.now(), env.self(), key_.tag, key_.a, key_.b,
                                msg.payload);
          }
        }
        return true;
      }
      return false;
    }
    default:
      return false;
  }
}

void RbcMux::broadcast(Env& env, InstanceKey key, Bytes payload) {
  instance(key).broadcast(env, std::move(payload));
}

bool RbcMux::handle(Env& env, PartyId from, const Message& msg) {
  if (msg.kind > kRbcReady) return false;
  auto& inst = instance(msg.key);
  if (inst.on_message(env, from, msg)) {
    on_deliver_(env, inst.key(), inst.output());
  }
  return true;
}

const RbcInstance* RbcMux::find(const InstanceKey& key) const {
  const auto it = instances_.find(key);
  return it == instances_.end() ? nullptr : &it->second;
}

RbcInstance& RbcMux::instance(const InstanceKey& key) {
  auto it = instances_.find(key);
  if (it == instances_.end()) {
    it = instances_.emplace(key, RbcInstance(params_, key)).first;
  }
  return it->second;
}

}  // namespace hydra::protocols
