// Instance-key tags: the "identification numbers" (Section 2) that route
// messages to sub-protocol instances.
//
// Key layout per tag:
//   kRbcInitValue    a = sender                      (Πinit step 2)
//   kRbcInitReport   a = sender                      (Πinit step 5)
//   kInitWitnessSet  direct message, no coordinates  (Πinit step 13)
//   kRbcObcValue     a = sender, b = iteration       (ΠoBC step 3 inside it)
//   kObcReport       b = iteration, direct message   (ΠoBC step 6)
//   kRbcHalt         a = sender, b = iteration       (ΠAA step 7)
#pragma once

#include <cstdint>

namespace hydra::protocols {

enum Tag : std::uint32_t {
  kRbcInitValue = 1,
  kRbcInitReport = 2,
  kInitWitnessSet = 3,
  kRbcObcValue = 4,
  kObcReport = 5,
  kRbcHalt = 6,
};

/// Wire `kind` values. Kinds 0..2 belong to the reliable-broadcast layer and
/// are consumed by RbcMux regardless of tag; kDirect carries upper-layer
/// point-to-point messages.
enum MsgKind : std::uint8_t {
  kRbcSend = 0,
  kRbcEcho = 1,
  kRbcReady = 2,
  kDirect = 3,
};

}  // namespace hydra::protocols
