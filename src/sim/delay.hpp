// Message-delay models: where the network adversary lives.
//
// A DelayModel sees every message (sender, receiver, current time, content)
// and decides its delivery delay. Synchronous models must return delays in
// (0, Delta]; asynchronous models may return anything finite — "delivered
// eventually". Self-addressed messages are always delivered with zero delay
// (local processing), bypassing the model.
//
// Adversarial schedulers (partitions, targeted reordering, rushing) are
// decorators in adversary/schedulers.hpp.
#pragma once

#include <algorithm>
#include <memory>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/message.hpp"

namespace hydra::sim {

class DelayModel {
 public:
  virtual ~DelayModel() = default;

  /// Delay in ticks (>= 1) for a message submitted at `now`.
  [[nodiscard]] virtual Duration delay(PartyId from, PartyId to, Time now,
                                       const Message& msg, Rng& rng) = 0;
};

/// Synchronous network, every message takes exactly Delta (the adversary's
/// worst case under synchrony).
class FixedDelay final : public DelayModel {
 public:
  explicit FixedDelay(Duration delta) : delta_(delta) {}

  [[nodiscard]] Duration delay(PartyId, PartyId, Time, const Message&, Rng&) override {
    return delta_;
  }

 private:
  Duration delta_;
};

/// Synchronous network with per-message jitter uniform in [min, max], where
/// max must be <= Delta for the run to qualify as synchronous.
class UniformDelay final : public DelayModel {
 public:
  UniformDelay(Duration min, Duration max) : min_(min), max_(max) {
    HYDRA_ASSERT(min >= 1 && min <= max);
  }

  [[nodiscard]] Duration delay(PartyId, PartyId, Time, const Message&, Rng& rng) override {
    return rng.next_int(min_, max_);
  }

 private:
  Duration min_;
  Duration max_;
};

/// Asynchronous network: exponential delays with the given mean, truncated at
/// `cap` so every message is delivered eventually within the simulation
/// horizon. Routinely exceeds any presumed Delta.
class ExponentialDelay final : public DelayModel {
 public:
  ExponentialDelay(double mean_ticks, Duration cap)
      : mean_(mean_ticks), cap_(cap) {
    HYDRA_ASSERT(mean_ticks >= 1.0 && cap >= 1);
  }

  [[nodiscard]] Duration delay(PartyId, PartyId, Time, const Message&, Rng& rng) override {
    const auto d = static_cast<Duration>(rng.next_exponential(mean_));
    return std::min(std::max<Duration>(1, d), cap_);
  }

 private:
  double mean_;
  Duration cap_;
};

}  // namespace hydra::sim
