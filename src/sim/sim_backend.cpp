#include "sim/sim_backend.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "net/backend.hpp"
#include "sim/simulation.hpp"

namespace hydra::sim {
namespace {

/// The parties are moved into the simulation, which the adapter keeps alive
/// until it is destroyed — caller-held observer pointers stay valid per the
/// net::Backend ownership contract.
class SimBackend final : public net::Backend {
 public:
  SimBackend(const net::BackendConfig& config,
             std::unique_ptr<DelayModel> delay_model)
      : sim_(SimConfig{.n = config.n,
                       .delta = config.delta,
                       .seed = config.seed,
                       .max_time = config.max_time,
                       .max_events = config.max_events},
             std::move(delay_model)) {}

  void set_fault_injector(faults::FaultInjector* injector) override {
    sim_.set_fault_injector(injector);
  }

  net::BackendStats run(std::vector<std::unique_ptr<IParty>>& parties,
                        const FinishedFn& finished) override {
    // Quiescence detection makes the finished predicate unnecessary here:
    // the run ends when the event queue drains.
    (void)finished;
    for (auto& party : parties) sim_.add_party(std::move(party));
    const SimStats stats = sim_.run();
    net::BackendStats out;
    out.wire = stats;  // slice down to the shared WireStats base
    out.end_time = stats.end_time;
    out.events = stats.events;
    out.hit_limit = stats.hit_limit;
    out.monitor_aborted = stats.monitor_aborted;
    return out;
  }

 private:
  Simulation sim_;
};

}  // namespace

void register_sim_backend() {
  net::register_backend(
      "sim",
      [](const net::BackendConfig& config,
         std::unique_ptr<DelayModel> delay_model) -> std::unique_ptr<net::Backend> {
        return std::make_unique<SimBackend>(config, std::move(delay_model));
      });
}

}  // namespace hydra::sim
