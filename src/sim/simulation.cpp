#include "sim/simulation.hpp"

#include <algorithm>
#include <array>
#include <utility>

#include "common/assert.hpp"
#include "faults/faults.hpp"
#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "obs/trace.hpp"

namespace hydra::sim {

/// Per-party view of the simulation; implements the Env the protocol sees.
class Simulation::PartyEnv final : public Env {
 public:
  PartyEnv(Simulation* sim, PartyId id) : sim_(sim), id_(id) {}

  void send(PartyId to, Message msg) override {
    HYDRA_ASSERT(to < sim_->parties_.size());
    sim_->deliver(id_, to, std::move(msg));
  }

  void broadcast(const Message& msg) override {
    for (PartyId to = 0; to < sim_->parties_.size(); ++to) {
      sim_->deliver(id_, to, msg);
    }
  }

  void set_timer(Time at, std::uint64_t timer_id) override {
    Simulation* sim = sim_;
    const PartyId id = id_;
    sim_->schedule(std::max(at, sim_->now_), [sim, id, timer_id] {
      sim->parties_[id]->on_timer(*sim->envs_[id], timer_id);
    });
  }

  [[nodiscard]] Time now() const override { return sim_->now_; }
  [[nodiscard]] PartyId self() const override { return id_; }
  [[nodiscard]] std::size_t n() const override { return sim_->parties_.size(); }

 private:
  Simulation* sim_;
  PartyId id_;
};

Simulation::Simulation(SimConfig config, std::unique_ptr<DelayModel> delay_model)
    : config_(config), delay_model_(std::move(delay_model)), rng_(config.seed) {
  HYDRA_ASSERT(delay_model_ != nullptr);
  HYDRA_ASSERT(config_.n >= 1);
  stats_.sent_per_party.assign(config_.n, 0);
}

Simulation::~Simulation() = default;

void Simulation::add_party(std::unique_ptr<IParty> party) {
  HYDRA_ASSERT_MSG(parties_.size() < config_.n, "more parties than config.n");
  const auto id = static_cast<PartyId>(parties_.size());
  parties_.push_back(std::move(party));
  envs_.push_back(std::make_unique<PartyEnv>(this, id));
}

void Simulation::schedule(Time at, std::function<void()> fn) {
  schedule_phase(at, Phase::kTimer, std::move(fn));
}

void Simulation::schedule_phase(Time at, Phase phase, std::function<void()> fn) {
  queue_.push(Event{at, phase, next_seq_++, std::move(fn)});
}

void Simulation::record_send(PartyId from, PartyId to, const Message& msg,
                             Duration delay, std::uint64_t send_id) {
  // Self-deliveries stay visible in the trace (they carry causality) but are
  // excluded from every message/byte count, matching SimStats and keeping
  // per-party totals comparable to the Thm 5.19 wire bound.
  if (from != to) {
    auto& registry = obs::registry();
    registry.counter("sim.messages").inc();
    registry.counter("sim.bytes").inc(msg.wire_size());
    if (config_.delta > 0) {
      // Per-round accounting: the paper's round structure is in units of
      // Delta.
      const auto round = static_cast<std::size_t>(now_ / config_.delta);
      if (stats_.messages_per_round.size() <= round) {
        stats_.messages_per_round.resize(round + 1, 0);
        stats_.bytes_per_round.resize(round + 1, 0);
      }
      stats_.messages_per_round[round] += 1;
      stats_.bytes_per_round[round] += msg.wire_size();
      // Delay in units of Delta: >1 means the synchrony bound was violated.
      static constexpr std::array<double, 7> kBounds{0.25, 0.5, 1.0, 2.0,
                                                     4.0,  8.0, 16.0};
      registry.histogram("sim.delay_delta", kBounds)
          .observe(static_cast<double>(delay) / static_cast<double>(config_.delta));
    }
    if (auto* mon = obs::monitors()) {
      mon->on_send(now_, from, msg.wire_size());
    }
  }
  if (auto* tr = obs::trace()) {
    tr->message_send(now_, from, to, msg.key.tag, msg.key.a, msg.key.b, msg.kind,
                     msg.wire_size(), send_id);
  }
}

void Simulation::schedule_traced_delivery(Time at, PartyId from, PartyId to,
                                          Message msg, std::uint64_t send_id) {
  Simulation* sim = this;
  schedule_phase(at, Phase::kMessage,
                 [sim, from, to, send_id, msg = std::move(msg)] {
    if (auto* tr = obs::trace()) {
      tr->message_deliver(sim->now_, from, to, msg.key.tag, msg.key.a,
                          msg.key.b, msg.kind, msg.wire_size(), send_id);
    }
    if (auto* mon = obs::monitors()) {
      // Bracket the handler so monitor checks fired inside it can name
      // this message as their cause.
      mon->begin_dispatch(send_id);
      sim->parties_[to]->on_message(*sim->envs_[to], from, msg);
      mon->end_dispatch();
      return;
    }
    sim->parties_[to]->on_message(*sim->envs_[to], from, msg);
  });
}

void Simulation::deliver(PartyId from, PartyId to, Message msg) {
  const bool self = from == to;
  // Self-delivery is local computation, not network traffic: zero delay (but
  // still queued, so handlers never re-enter) and excluded from all message
  // accounting — only wire traffic counts against the paper's bounds.
  const Duration base = self ? 0 : delay_model_->delay(from, to, now_, msg, rng_);
  HYDRA_ASSERT(self || base >= 1);
  if (!self) {
    stats_.messages += 1;
    stats_.bytes += msg.wire_size();
    stats_.sent_per_party[from] += 1;
  }

  Duration d = base;
  Duration dup_delay = -1;  // >= 0 schedules a duplicate copy at that delay
  const char* drop_reason = nullptr;
  if (injector_ != nullptr) {
    const auto outcome = injector_->on_message(from, to, now_, base);
    d = outcome.delays[0];
    if (outcome.dropped) {
      drop_reason = outcome.reason;
    } else if (outcome.duplicated) {
      dup_delay = outcome.delays[1];
    }
  }

  Simulation* sim = this;
  if (obs::enabled()) {
    // The obs state cannot change while run() executes, so the dispatch
    // closure needs no enabled() re-check of its own.
    const std::uint64_t send_id = ++send_id_;
    record_send(from, to, msg, d, send_id);
    if (injector_ != nullptr) {
      if (auto* tr = obs::trace()) {
        if (drop_reason != nullptr) {
          tr->fault(now_, "drop", from, to, send_id, drop_reason);
        } else if (dup_delay >= 0) {
          tr->fault(now_, "dup", from, to, send_id, "");
        }
      }
    }
    if (drop_reason != nullptr) return;
    if (dup_delay >= 0) {
      // The copy shares the original's send id: one send event, two
      // delivers with the same cause.
      Message copy = msg;
      schedule_traced_delivery(now_ + d, from, to, std::move(msg), send_id);
      schedule_traced_delivery(now_ + dup_delay, from, to, std::move(copy), send_id);
      return;
    }
    schedule_traced_delivery(now_ + d, from, to, std::move(msg), send_id);
    return;
  }
  if (drop_reason != nullptr) return;
  if (dup_delay >= 0) {
    Message copy = msg;
    schedule_phase(now_ + d, Phase::kMessage, [sim, from, to, msg = std::move(msg)] {
      sim->parties_[to]->on_message(*sim->envs_[to], from, msg);
    });
    schedule_phase(now_ + dup_delay, Phase::kMessage,
                   [sim, from, to, msg = std::move(copy)] {
      sim->parties_[to]->on_message(*sim->envs_[to], from, msg);
    });
    return;
  }
  // Disabled hot path: one atomic load above, then the lean closure — held
  // to < 2% overhead by bench_obs_overhead.
  schedule_phase(now_ + d, Phase::kMessage, [sim, from, to, msg = std::move(msg)] {
    sim->parties_[to]->on_message(*sim->envs_[to], from, msg);
  });
}

SimStats Simulation::run() {
  HYDRA_ASSERT_MSG(parties_.size() == config_.n, "add exactly n parties before run()");
  // All parties start simultaneously at local time 0.
  for (PartyId id = 0; id < parties_.size(); ++id) {
    Simulation* sim = this;
    schedule_phase(0, Phase::kMessage, [sim, id] { sim->parties_[id]->start(*sim->envs_[id]); });
  }

  // Hoisted: the context (and with it the monitor host) cannot change while
  // run() executes on this thread. The drain loop is duplicated so the
  // monitors-off path carries no per-event check (bench_obs_overhead).
  obs::MonitorHost* mon = obs::enabled() ? obs::monitors() : nullptr;

  if (mon == nullptr) {
    while (!queue_.empty()) {
      if (stats_.events >= config_.max_events || queue_.top().at > config_.max_time) {
        stats_.hit_limit = true;
        break;
      }
      // Move the event out instead of copying: top() is const-qualified
      // only because mutating the ordering fields would corrupt the heap;
      // moving the closure (and its captured payload) right before pop()
      // leaves the comparator-visible scalars untouched.
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      HYDRA_ASSERT(ev.at >= now_);
      now_ = ev.at;
      stats_.events += 1;
      ev.fn();
    }
  } else {
    while (!queue_.empty()) {
      if (stats_.events >= config_.max_events || queue_.top().at > config_.max_time) {
        stats_.hit_limit = true;
        break;
      }
      if (mon->abort_requested()) {
        stats_.monitor_aborted = true;
        break;
      }
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      HYDRA_ASSERT(ev.at >= now_);
      now_ = ev.at;
      stats_.events += 1;
      ev.fn();
    }
  }

  stats_.end_time = now_;
  if (obs::enabled()) {
    obs::registry().counter("sim.events").inc(stats_.events);
  }
  return stats_;
}

}  // namespace hydra::sim
