#include "sim/simulation.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "faults/faults.hpp"
#include "net/delivery.hpp"
#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "obs/prof.hpp"

namespace hydra::sim {

/// Per-party view of the simulation; implements the Env the protocol sees.
class Simulation::PartyEnv final : public Env {
 public:
  PartyEnv(Simulation* sim, PartyId id) : sim_(sim), id_(id) {}

  void send(PartyId to, Message msg) override {
    HYDRA_ASSERT(to < sim_->parties_.size());
    sim_->deliver(id_, to, std::move(msg));
  }

  void broadcast(const Message& msg) override {
    for (PartyId to = 0; to < sim_->parties_.size(); ++to) {
      sim_->deliver(id_, to, msg);
    }
  }

  void set_timer(Time at, std::uint64_t timer_id) override {
    Simulation* sim = sim_;
    const PartyId id = id_;
    sim_->schedule(std::max(at, sim_->now_), [sim, id, timer_id] {
      sim->parties_[id]->on_timer(*sim->envs_[id], timer_id);
    });
  }

  [[nodiscard]] Time now() const override { return sim_->now_; }
  [[nodiscard]] PartyId self() const override { return id_; }
  [[nodiscard]] std::size_t n() const override { return sim_->parties_.size(); }

 private:
  Simulation* sim_;
  PartyId id_;
};

Simulation::Simulation(SimConfig config, std::unique_ptr<DelayModel> delay_model)
    : config_(config),
      delay_model_(std::move(delay_model)),
      rng_(config.seed),
      pipeline_(net::EgressConfig{.n = config.n,
                                  .delta = config.delta,
                                  .per_round = true,
                                  .eager_ids = false,
                                  .messages_counter = "sim.messages",
                                  .bytes_counter = "sim.bytes",
                                  .delay_histogram = "sim.delay_delta"}) {
  HYDRA_ASSERT(delay_model_ != nullptr);
  HYDRA_ASSERT(config_.n >= 1);
}

Simulation::~Simulation() = default;

void Simulation::add_party(std::unique_ptr<IParty> party) {
  HYDRA_ASSERT_MSG(parties_.size() < config_.n, "more parties than config.n");
  const auto id = static_cast<PartyId>(parties_.size());
  parties_.push_back(std::move(party));
  envs_.push_back(std::make_unique<PartyEnv>(this, id));
}

void Simulation::schedule(Time at, std::function<void()> fn) {
  schedule_phase(at, Phase::kTimer, std::move(fn));
}

void Simulation::schedule_phase(Time at, Phase phase, std::function<void()> fn) {
  queue_.push(Event{at, phase, next_seq_++, std::move(fn)});
}

void Simulation::schedule_traced_delivery(Time at, PartyId from, PartyId to,
                                          Message msg, std::uint64_t send_id) {
  Simulation* sim = this;
  schedule_phase(at, Phase::kMessage,
                 [sim, from, to, send_id, msg = std::move(msg)] {
    net::DeliveryGate::dispatch(sim->now_, from, to, msg, send_id, [&] {
      sim->parties_[to]->on_message(*sim->envs_[to], from, msg);
    });
  });
}

void Simulation::deliver(PartyId from, PartyId to, Message msg) {
  const bool self = from == to;
  // Self-delivery is local computation, not network traffic: zero delay (but
  // still queued, so handlers never re-enter); the pipeline exempts it from
  // all message accounting — only wire traffic counts against the paper's
  // bounds. All other egress policy (fault outcomes, ids, obs emission)
  // lives in net::EgressPipeline, shared with the thread transport.
  const Duration base = self ? 0 : delay_model_->delay(from, to, now_, msg, rng_);
  const auto egress = pipeline_.on_send(from, to, msg, now_, base, injector_);
  if (egress.copies == 0) return;  // crashed endpoint dropped it

  if (egress.send_id != 0) {
    // Observability was on for this send (lazy id mode allocates ids only
    // then, and the obs state cannot change while run() executes): schedule
    // traced deliveries. A duplicate shares the original's send id — one
    // send event, two delivers with the same cause.
    schedule_traced_delivery(now_ + egress.delay[0], from, to,
                             egress.copies == 2 ? Message(msg) : std::move(msg),
                             egress.send_id);
    if (egress.copies == 2) {
      schedule_traced_delivery(now_ + egress.delay[1], from, to, std::move(msg),
                               egress.send_id);
    }
    return;
  }
  // Disabled hot path: one atomic load inside the pipeline, then the lean
  // closure — held to < 2% overhead by bench_obs_overhead.
  Simulation* sim = this;
  if (egress.copies == 2) {
    Message copy = msg;
    schedule_phase(now_ + egress.delay[0], Phase::kMessage,
                   [sim, from, to, msg = std::move(msg)] {
      sim->parties_[to]->on_message(*sim->envs_[to], from, msg);
    });
    schedule_phase(now_ + egress.delay[1], Phase::kMessage,
                   [sim, from, to, msg = std::move(copy)] {
      sim->parties_[to]->on_message(*sim->envs_[to], from, msg);
    });
    return;
  }
  schedule_phase(now_ + egress.delay[0], Phase::kMessage,
                 [sim, from, to, msg = std::move(msg)] {
    sim->parties_[to]->on_message(*sim->envs_[to], from, msg);
  });
}

SimStats Simulation::run() {
  HYDRA_ASSERT_MSG(parties_.size() == config_.n, "add exactly n parties before run()");
  // All parties start simultaneously at local time 0.
  for (PartyId id = 0; id < parties_.size(); ++id) {
    Simulation* sim = this;
    schedule_phase(0, Phase::kMessage, [sim, id] { sim->parties_[id]->start(*sim->envs_[id]); });
  }

  // Hoisted: the context (and with it the monitor host and profiler) cannot
  // change while run() executes on this thread. The drain loop is duplicated
  // so the monitors-off, profiler-off path carries no per-event check
  // (bench_obs_overhead).
  obs::MonitorHost* mon = obs::enabled() ? obs::monitors() : nullptr;

  if (mon == nullptr && !obs::prof_enabled()) {
    while (!queue_.empty()) {
      if (stats_.events >= config_.max_events || queue_.top().at > config_.max_time) {
        stats_.hit_limit = true;
        break;
      }
      // Move the event out instead of copying: top() is const-qualified
      // only because mutating the ordering fields would corrupt the heap;
      // moving the closure (and its captured payload) right before pop()
      // leaves the comparator-visible scalars untouched.
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      HYDRA_ASSERT(ev.at >= now_);
      now_ = ev.at;
      stats_.events += 1;
      ev.fn();
    }
  } else {
    drain_observed(mon);
  }

  stats_.end_time = now_;
  pipeline_.export_stats(stats_);
  if (obs::enabled()) {
    obs::registry().counter("sim.events").inc(stats_.events);
  }
  return stats_;
}

void Simulation::drain_observed(obs::MonitorHost* mon) {
  HYDRA_PROF_SCOPE("sim.run");
  while (!queue_.empty()) {
    if (stats_.events >= config_.max_events || queue_.top().at > config_.max_time) {
      stats_.hit_limit = true;
      break;
    }
    if (mon != nullptr && mon->abort_requested()) {
      stats_.monitor_aborted = true;
      break;
    }
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    HYDRA_ASSERT(ev.at >= now_);
    now_ = ev.at;
    stats_.events += 1;
    {
      // Per-event phase: everything a handler does (net.deliver, aa.*,
      // geo.*) nests under sim.event, so self-time here is pure event-loop
      // bookkeeping.
      HYDRA_PROF_SCOPE("sim.event");
      ev.fn();
    }
  }
}

}  // namespace hydra::sim
