// Deterministic discrete-event simulator.
//
// A single priority queue of (time, sequence) events drives n parties. One
// master seed fully determines the run: delay draws, adversary choices and
// event ordering are all derived from it. Ties in virtual time break by
// submission order, which is itself deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/egress.hpp"
#include "net/wire_stats.hpp"
#include "sim/delay.hpp"
#include "sim/env.hpp"
#include "sim/message.hpp"

namespace hydra::faults {
class FaultInjector;
}

namespace hydra::sim {

struct SimConfig {
  std::size_t n = 4;
  Duration delta = 1000;          ///< the public bound Delta, in ticks
  std::uint64_t seed = 1;
  Time max_time = 500'000'000;    ///< hard stop (liveness-failure detector)
  std::uint64_t max_events = 50'000'000;
};

/// Wire accounting (messages/bytes/per-party/per-round) lives in the shared
/// net::WireStats base — both backends fill it through net::EgressPipeline.
/// The fields below are simulator-specific diagnostics.
struct SimStats : net::WireStats {
  std::uint64_t events = 0;
  Time end_time = 0;
  bool hit_limit = false;  ///< stopped by max_time/max_events, not quiescence
  /// Stopped early because a strict-mode invariant monitor requested it
  /// (obs/monitor.hpp); the queue was not drained.
  bool monitor_aborted = false;
};

class Simulation {
 public:
  Simulation(SimConfig config, std::unique_ptr<DelayModel> delay_model);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Parties must be added in id order before run(); party i gets id i.
  void add_party(std::unique_ptr<IParty> party);

  /// Runs until the event queue drains or a limit is hit.
  SimStats run();

  [[nodiscard]] Time now() const noexcept { return now_; }
  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }
  /// Wire totals are folded in from the egress pipeline when run() returns;
  /// mid-run the WireStats base is all zeros.
  [[nodiscard]] const SimStats& stats() const noexcept { return stats_; }

  /// Test hook: schedule an arbitrary callback at absolute time `at` (runs
  /// in the timer phase, i.e. after same-tick message deliveries).
  void schedule(Time at, std::function<void()> fn);

  /// Installs a fault injector (src/faults/) consulted on every message.
  /// Borrowed: the injector must outlive run(). nullptr (the default) keeps
  /// the fault-free fast path — a single branch per deliver().
  void set_fault_injector(faults::FaultInjector* injector) noexcept {
    injector_ = injector;
  }

 private:
  class PartyEnv;

  /// Same-tick ordering: all message deliveries at time T happen before any
  /// timer at time T. This realizes the paper's synchronous semantics, where
  /// "delivered within Delta" is inclusive and a guard evaluated at time
  /// tau_start + c * Delta observes every message sent c rounds earlier.
  enum class Phase : std::uint8_t { kMessage = 0, kTimer = 1 };

  void schedule_phase(Time at, Phase phase, std::function<void()> fn);

  /// Drain loop for observed runs (monitors and/or profiler active). Kept
  /// out of run() — and out of the hot text sections — so the lean loop the
  /// overhead bench gates shares no cache lines with monitor checks or
  /// profiler scopes.
#if defined(__GNUC__) || defined(__clang__)
  __attribute__((noinline, cold))
#endif
  void drain_observed(obs::MonitorHost* mon);

  /// Runs the posted message through the shared net::EgressPipeline
  /// (accounting, fault injection, ids, obs emission) and schedules the
  /// surviving copies. The simulator itself contains no egress logic.
  void deliver(PartyId from, PartyId to, Message msg);

  /// Queues one traced delivery (net::DeliveryGate: deliver event + monitor
  /// dispatch bracket). Used by the obs-enabled path; the fault injector may
  /// queue the same send twice (duplication), both copies carrying the same
  /// `send_id`.
  void schedule_traced_delivery(Time at, PartyId from, PartyId to, Message msg,
                                std::uint64_t send_id);

  SimConfig config_;
  std::unique_ptr<DelayModel> delay_model_;
  Rng rng_;
  faults::FaultInjector* injector_ = nullptr;

  struct Event {
    Time at;
    Phase phase;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      if (a.phase != b.phase) return a.phase > b.phase;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::uint64_t next_seq_ = 0;
  /// The shared send-side path (plain counters — single-threaded). Lazy id
  /// mode: trace send ids are allocated only while obs is enabled, so the
  /// disabled path is untouched and same-seed traces stay identical.
  net::EgressPipeline pipeline_;

  std::vector<std::unique_ptr<IParty>> parties_;
  std::vector<std::unique_ptr<PartyEnv>> envs_;

  Time now_ = 0;
  SimStats stats_;
};

}  // namespace hydra::sim
