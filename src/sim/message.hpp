// The wire unit exchanged between parties.
//
// `key` carries the sub-protocol instance identification (Section 2 of the
// paper: "messages are provided with identification numbers"); `kind` is a
// layer-defined discriminator (e.g. Bracha's send/echo/ready); `payload` is
// an opaque byte vector serialized by the emitting layer.
//
// The sender identity is NOT part of the message: the network attaches it at
// delivery, which is what an authenticated channel provides — a Byzantine
// party can put arbitrary bytes in `payload` but cannot forge `from`.
#pragma once

#include <cstdint>

#include "common/serialize.hpp"
#include "common/types.hpp"

namespace hydra::sim {

struct Message {
  InstanceKey key;
  std::uint8_t kind = 0;
  Bytes payload;

  [[nodiscard]] std::size_t wire_size() const noexcept {
    // 12 bytes of key + 1 byte kind + 4-byte length prefix + payload.
    return 12 + 1 + 4 + payload.size();
  }
};

}  // namespace hydra::sim
