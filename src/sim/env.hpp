// The environment interface protocols are written against.
//
// Everything a protocol party may do — send, set timers, read its local
// clock — goes through Env. The same protocol objects therefore run
// unchanged on the discrete-event simulator (sim/simulation.hpp) and on the
// real-thread transport (transport/thread_net.hpp).
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "sim/message.hpp"

namespace hydra::sim {

class Env {
 public:
  virtual ~Env() = default;

  /// Point-to-point authenticated send.
  virtual void send(PartyId to, Message msg) = 0;

  /// Best-effort broadcast: unicast to every party, including self
  /// (the paper's "send to all the parties").
  virtual void broadcast(const Message& msg) = 0;

  /// Requests an on_timer(timer_id) callback at absolute local time `at`
  /// (fires immediately-ish if `at` is already past). Timers are local-clock
  /// facilities and fire on schedule even in asynchronous networks.
  virtual void set_timer(Time at, std::uint64_t timer_id) = 0;

  /// Local clock.
  [[nodiscard]] virtual Time now() const = 0;

  [[nodiscard]] virtual PartyId self() const = 0;

  /// Total number of parties n.
  [[nodiscard]] virtual std::size_t n() const = 0;
};

/// A party is an event-driven state machine. Handlers must not block; they
/// react to events and (re-)evaluate their guards.
class IParty {
 public:
  virtual ~IParty() = default;

  /// Called once at protocol start (local time 0).
  virtual void start(Env& env) = 0;

  /// A message arrived on the authenticated channel from `from`.
  virtual void on_message(Env& env, PartyId from, const Message& msg) = 0;

  /// A timer requested via Env::set_timer fired.
  virtual void on_timer(Env& env, std::uint64_t timer_id) = 0;
};

}  // namespace hydra::sim
