// net::Backend adapter for the deterministic discrete-event simulator.
#pragma once

namespace hydra::sim {

/// Registers the simulator as net backend "sim". Idempotent (re-registering
/// replaces the factory); called from harness::ensure_backends_registered()
/// — explicit rather than a static initializer, which the linker would drop
/// from a static library.
void register_sim_backend();

}  // namespace hydra::sim
