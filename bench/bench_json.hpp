// Unified bench JSON emission for the bench/ binaries.
//
// Every bench that measures time accepts `--json PATH` (or `--json=PATH`)
// and writes its measurements in the shared hydra-bench-v1 schema
// (src/harness/perf.hpp), so one parser, one delta renderer (`hydra perf
// --baseline`) and one CI gate (tools/perf_gate) cover all of them.
// consume_json_path() strips the flag from argv so binaries that hand the
// remaining arguments to google-benchmark's Initialize never confuse it.
#pragma once

#include <cstring>
#include <string>

#include "harness/perf.hpp"

namespace hydra::bench {

/// Removes `--json PATH` / `--json=PATH` from argv and returns the path
/// ("" when absent). argc is updated in place.
inline std::string consume_json_path(int& argc, char** argv) {
  std::string path;
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      path = argv[++i];
      continue;
    }
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      path = argv[i] + 7;
      continue;
    }
    argv[w++] = argv[i];
  }
  argc = w;
  return path;
}

}  // namespace hydra::bench
