// F1 — Figure 1 / Theorem 3.1 reproduction.
//
// The paper's synchronous lower bound: with n = (D+1) ts parties split into
// D+1 blocks holding inputs eps*e_0 .. eps*e_D, an honest block d cannot
// distinguish the D scenarios "block i != d is corrupted"; validity in each
// scenario forces its output into convex({e_j : j != i}), and the
// intersection over all scenarios is exactly {e_d}. Every block is forced to
// output its own input, and the output diameter is eps * sqrt(2) > eps.
//
// This binary recomputes that geometry with the exact 2-D kernel (and the
// general-D LP kernel for D = 3), printing the per-scenario hulls, the
// forced outputs, and the forced disagreement. It also reproduces the
// asynchronous variant (Theorem 3.2): D+2 blocks, one silent.
#include <cmath>
#include <cstdio>
#include <vector>

#include "geometry/convex.hpp"
#include "geometry/polygon.hpp"
#include "geometry/vec.hpp"
#include "harness/table.hpp"

using namespace hydra;
using harness::Table;

namespace {

/// The block inputs of Theorem 3.1: e_0 = 0, e_d = eps * unit_d.
std::vector<geo::Vec> block_inputs(std::size_t dim, double eps) {
  std::vector<geo::Vec> e;
  e.push_back(geo::Vec(dim, 0.0));
  for (std::size_t d = 0; d < dim; ++d) {
    geo::Vec v(dim, 0.0);
    v[d] = eps;
    e.push_back(std::move(v));
  }
  return e;
}

/// Intersection over i != d of convex({e_j : j != i}), as a point list probe:
/// returns which block inputs lie in the intersection.
std::vector<std::size_t> forced_output_blocks(const std::vector<geo::Vec>& e,
                                              std::size_t d) {
  std::vector<std::vector<geo::Vec>> hulls;
  for (std::size_t i = 0; i < e.size(); ++i) {
    if (i == d) continue;
    std::vector<geo::Vec> hull;
    for (std::size_t j = 0; j < e.size(); ++j) {
      if (j != i) hull.push_back(e[j]);
    }
    hulls.push_back(std::move(hull));
  }
  std::vector<std::size_t> inside;
  for (std::size_t j = 0; j < e.size(); ++j) {
    bool in_all = true;
    for (const auto& hull : hulls) {
      if (!geo::in_convex_hull(hull, e[j], 1e-9)) {
        in_all = false;
        break;
      }
    }
    if (in_all) inside.push_back(j);
  }
  return inside;
}

void run_dimension(std::size_t dim, double eps) {
  const auto e = block_inputs(dim, eps);
  std::printf("D = %zu, ts = 1, n = (D+1) ts = %zu, eps = %g\n", dim, dim + 1, eps);
  std::printf("block inputs: ");
  for (const auto& v : e) std::printf("%s ", geo::to_string(v).c_str());
  std::printf("\n");

  Table table({"honest block d", "forced output set",
               "equals own input e_d?"});
  std::vector<geo::Vec> forced;
  for (std::size_t d = 0; d <= dim; ++d) {
    const auto inside = forced_output_blocks(e, d);
    std::string set;
    for (auto j : inside) set += "e_" + std::to_string(j) + " ";
    const bool singleton = inside.size() == 1 && inside[0] == d;
    if (singleton) forced.push_back(e[d]);
    table.row({"d = " + std::to_string(d), set.empty() ? "(empty)" : set,
               harness::fmt_ok(singleton)});
  }
  table.print();

  const double diam = geo::diameter(forced);
  std::printf("forced output diameter = %.6g  (eps * sqrt(2) = %.6g)  -> "
              "%s eps-agreement at n = (D+1) ts\n\n",
              diam, eps * std::sqrt(2.0),
              diam > eps ? "IMPOSSIBLE" : "possible");
}

}  // namespace

int main() {
  std::printf("== F1: Figure 1 / Theorem 3.1 — synchronous lower bound "
              "n > (D+1) ts is necessary ==\n\n");
  for (std::size_t dim = 2; dim <= 4; ++dim) run_dimension(dim, 1.0);

  std::printf("== Theorem 3.2 — asynchronous lower bound n > (D+2) ta ==\n\n");
  // D+2 blocks: blocks 0..D hold e_0..e_D, block D+1 is silent; honest
  // blocks cannot wait for it, and the same forced-output argument applies
  // to the remaining D+1 blocks. The geometry is identical; the extra block
  // only shifts the count from (D+1) ta to (D+2) ta.
  for (std::size_t dim = 2; dim <= 3; ++dim) {
    const auto e = block_inputs(dim, 1.0);
    std::printf("D = %zu: n = (D+2) ta = %zu parties, %zu value blocks + 1 "
                "silent block;\n",
                dim, dim + 2, dim + 1);
    std::printf("  indistinguishability forces each value block to output its "
                "own input\n  -> diameter %.6g > eps = 1 (same geometry as "
                "above).\n\n",
                std::sqrt(2.0));
  }

  std::printf("Paper prediction: both resilience bounds are tight; the "
              "protocol's (D+1) ts + ta < n matches them at ta = 0 and "
              "ts = ta.\n");
  return 0;
}
