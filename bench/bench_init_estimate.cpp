// T5 — Πinit estimate quality + the known-bounds ablation.
//
// Theorem 5.18 guarantees every honest estimate T is SUFFICIENT:
// T >= log_sqrt(7/8)(eps / diam(I_0)). This binary sweeps eps and measures:
//  * the honest estimates T (min/max) and the iteration actually output;
//  * whether the final outputs meet eps (they must);
//  * how conservative the estimate is (output diameter / eps);
// and then ablates Πinit against the fixed-iteration mode of [20] (known
// input bounds supplied out of band): same guarantees, c_init = 8 rounds
// saved, but requiring a priori knowledge the hybrid model does not have.
#include <cstdio>
#include <vector>

#include "harness/runner.hpp"
#include "harness/table.hpp"
#include "protocols/init.hpp"

using namespace hydra;
using namespace hydra::harness;

int main() {
  std::printf("== T5a: Πinit estimate sufficiency across eps (async network, "
              "n = 8, ts = 2, ta = 1, D = 2) ==\n\n");

  Table table({"eps", "input-diam", "T_min", "T_max", "out-iter(max)", "out-diam",
               "agree", "diam/eps"});
  for (const double eps : {1e-1, 1e-2, 1e-3, 1e-4, 1e-5}) {
    RunSpec spec;
    spec.params.n = 8;
    spec.params.ts = 2;
    spec.params.ta = 1;
    spec.params.dim = 2;
    spec.params.eps = eps;
    spec.params.delta = 1000;
    spec.workload = Workload::kGaussian;
    spec.workload_scale = 20.0;
    spec.network = Network::kAsyncReorder;
    spec.adversary = Adversary::kSilent;
    spec.corruptions = 1;
    spec.seed = static_cast<std::uint64_t>(1.0 / eps);

    const auto result = execute(spec);
    table.row({fmt(eps), fmt(result.input_diameter), fmt(result.min_estimate),
               fmt(result.max_estimate), fmt(std::uint64_t{result.max_output_iteration}),
               fmt(result.verdict.output_diameter), fmt_ok(result.verdict.agreed),
               fmt(result.verdict.output_diameter / eps)});
  }
  table.print();

  std::printf("\n== T5b: ablation — Πinit estimation vs known-bounds "
              "fixed-iteration mode ([20]'s assumption) ==\n\n");
  Table ab({"mode", "rounds", "messages", "agree", "valid", "note"});
  for (const bool fixed : {false, true}) {
    RunSpec spec;
    spec.params.n = 5;
    spec.params.ts = 1;
    spec.params.ta = 1;
    spec.params.dim = 2;
    spec.params.eps = 1e-3;
    spec.params.delta = 1000;
    if (fixed) {
      // Known input bound: diameter <= 2 * scale (supplied a priori).
      spec.params.fixed_iterations =
          protocols::sufficient_iterations(spec.params.eps, 2.0 * 20.0);
    }
    spec.workload = Workload::kGaussian;
    spec.workload_scale = 20.0;
    spec.network = Network::kAsyncReorder;
    spec.adversary = Adversary::kNone;
    spec.corruptions = 0;
    spec.seed = 77;
    const auto result = execute(spec);
    ab.row({fixed ? "fixed-T (known bounds)" : "Pi_init (estimated)",
            fmt(result.rounds), fmt(result.messages),
            fmt_ok(result.verdict.agreed), fmt_ok(result.verdict.valid),
            fixed ? "needs a-priori input bound" : "self-contained"});
  }
  ab.print();

  std::printf("\nPaper prediction: estimates are always sufficient (agree = yes "
              "in every T5a row) and within a small constant of the minimal "
              "iteration count; Πinit costs %d extra rounds over known-bounds "
              "mode but removes the a-priori-knowledge assumption of [20].\n",
              protocols::Params::kCInit);
  return 0;
}
