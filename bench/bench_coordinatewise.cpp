// T9 — Why multidimensional AA at all? The coordinate-wise strawman.
//
// Running D independent 1-D AA instances (one per coordinate) inherits
// liveness and per-coordinate agreement, but only confines outputs to the
// BOUNDING BOX of the honest inputs — not their convex hull. A Byzantine
// party holding a box corner outside the hull (here (1,1) against honest
// inputs near the triangle {(0,0),(1,0),(0,1)}) steers different
// coordinates toward different honest extremes, and asynchronous
// scheduling does the rest. This is the classical argument of [26, 32] for
// why D-AA needs genuinely multidimensional safe areas; here it is measured.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "adversary/schedulers.hpp"
#include "baselines/coordinatewise.hpp"
#include "geometry/convex.hpp"
#include "harness/runner.hpp"
#include "harness/table.hpp"
#include "sim/simulation.hpp"

using namespace hydra;
using namespace hydra::harness;

namespace {

struct Tally {
  int outputs = 0;
  int validity_violations = 0;
  int liveness_failures = 0;
};

Tally run_coordinatewise(bool synchronous, std::uint64_t seeds) {
  Tally tally;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    protocols::Params p;
    p.n = 5;
    p.ts = 1;
    p.ta = 1;
    p.dim = 2;
    p.eps = 1e-3;
    p.delta = 1000;
    if (const auto err = baselines::CoordinatewiseParty::feasibility_error(p)) {
      std::fprintf(stderr, "error: %s\n", err->c_str());
      std::exit(2);
    }
    // Byzantine slot 0 runs the honest code with the box corner (1,1) —
    // inside both coordinate ranges, far outside the honest hull.
    const std::vector<geo::Vec> inputs{
        {1.0, 1.0}, {0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}, {0.2, 0.2}};

    std::unique_ptr<sim::DelayModel> model;
    if (synchronous) {
      model = std::make_unique<sim::UniformDelay>(1, p.delta);
    } else {
      model = std::make_unique<adversary::ReorderScheduler>(p.delta, 0.35,
                                                            10 * p.delta);
    }
    sim::Simulation sim({.n = p.n, .delta = p.delta, .seed = seed},
                        std::move(model));
    std::vector<baselines::CoordinatewiseParty*> honest;
    for (PartyId id = 0; id < p.n; ++id) {
      auto party = std::make_unique<baselines::CoordinatewiseParty>(p, inputs[id]);
      if (id != 0) honest.push_back(party.get());
      sim.add_party(std::move(party));
    }
    sim.run();

    const std::vector<geo::Vec> honest_inputs(inputs.begin() + 1, inputs.end());
    for (auto* h : honest) {
      if (!h->has_output()) {
        ++tally.liveness_failures;
        continue;
      }
      ++tally.outputs;
      if (!geo::in_convex_hull(honest_inputs, h->output(), 1e-6)) {
        ++tally.validity_violations;
      }
    }
  }
  return tally;
}

Tally run_hybrid(bool synchronous, std::uint64_t seeds) {
  Tally tally;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    RunSpec spec;
    spec.params.n = 5;
    spec.params.ts = 1;
    spec.params.ta = 1;
    spec.params.dim = 2;
    spec.params.eps = 1e-3;
    spec.params.delta = 1000;
    spec.workload = Workload::kSimplexCorners;  // the same adversarial shape
    spec.workload_scale = 1.0;
    spec.network = synchronous ? Network::kSyncJitter : Network::kAsyncReorder;
    spec.adversary = Adversary::kOutlier;
    spec.corruptions = 1;
    spec.seed = seed;
    const auto result = execute(spec);
    tally.outputs += static_cast<int>(spec.params.n - 1);
    if (!result.verdict.live) ++tally.liveness_failures;
    if (!result.verdict.valid) ++tally.validity_violations;
  }
  return tally;
}

}  // namespace

int main() {
  constexpr std::uint64_t kSeeds = 20;
  std::printf("== T9: coordinate-wise decomposition vs genuine D-AA ==\n");
  std::printf("honest inputs ~ triangle {(0,0),(1,0),(0,1)}; Byzantine input "
              "(1,1) — a bounding-box corner outside the hull.\n\n");

  Table table({"protocol", "network", "honest outputs", "validity violations",
               "liveness failures"});
  for (const bool synchronous : {true, false}) {
    const auto cw = run_coordinatewise(synchronous, kSeeds);
    table.row({"coordinate-wise 1-D x D", synchronous ? "sync" : "async",
               fmt(std::uint64_t(cw.outputs)), fmt(std::uint64_t(cw.validity_violations)),
               fmt(std::uint64_t(cw.liveness_failures))});
    const auto hy = run_hybrid(synchronous, kSeeds);
    table.row({"hybrid D-AA (this paper)", synchronous ? "sync" : "async",
               fmt(std::uint64_t(hy.outputs)), fmt(std::uint64_t(hy.validity_violations)),
               fmt(std::uint64_t(hy.liveness_failures))});
  }
  table.print();

  std::printf("\nPaper context ([26, 32]): per-coordinate agreement only "
              "bounds outputs to the honest BOX; safe areas bound them to "
              "the honest HULL. Expected: the strawman violates validity "
              "under asynchrony (and can under synchrony), the hybrid "
              "protocol never does.\n");
  return 0;
}
