// T10 — Substrate microbenchmarks: raw simulator and protocol-stack costs.
//
// Not a paper experiment but the capacity envelope of the testbed itself:
// how many simulated events per second the discrete-event core sustains,
// what one reliable broadcast / one ΠoBC round / one full ΠAA run cost, and
// how that scales with n. Useful when sizing larger sweeps.
#include <benchmark/benchmark.h>

#include <memory>

#include "harness/runner.hpp"
#include "sim/delay.hpp"
#include "sim/env.hpp"
#include "sim/simulation.hpp"

using namespace hydra;

namespace {

/// Minimal ping party: floods k self-perpetuating messages, used to measure
/// the raw event-loop overhead without protocol logic.
class PingParty : public sim::IParty {
 public:
  explicit PingParty(int hops, std::size_t payload_bytes = 0)
      : hops_(hops), payload_bytes_(payload_bytes) {}

  void start(sim::Env& env) override {
    env.send((env.self() + 1) % static_cast<PartyId>(env.n()),
             sim::Message{InstanceKey{1, 0, 0}, 0, Bytes(payload_bytes_, 0xab)});
  }

  void on_message(sim::Env& env, PartyId, const sim::Message& msg) override {
    if (static_cast<int>(msg.key.b) >= hops_) return;
    auto next = msg;
    next.key.b += 1;
    env.send((env.self() + 1) % static_cast<PartyId>(env.n()), next);
  }

  void on_timer(sim::Env&, std::uint64_t) override {}

 private:
  int hops_;
  std::size_t payload_bytes_;
};

void BM_EventLoopThroughput(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::Simulation sim({.n = n, .delta = 10, .seed = 1},
                        std::make_unique<sim::FixedDelay>(10));
    for (std::size_t i = 0; i < n; ++i) {
      sim.add_party(std::make_unique<PingParty>(200));
    }
    const auto stats = sim.run();
    events += stats.events;
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventLoopThroughput)->Arg(4)->Arg(16)->Arg(64);

/// Same ping topology but each message drags a payload. Events whose
/// closures own a heap buffer are exactly where the event loop's
/// move-on-pop (vs. copy-then-pop) discipline shows up: with a copying
/// pop every dequeue clones the payload once for nothing.
void BM_EventLoopThroughputPayload(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto payload_bytes = static_cast<std::size_t>(state.range(1));
  std::uint64_t events = 0;
  std::uint64_t moved_bytes = 0;
  for (auto _ : state) {
    sim::Simulation sim({.n = n, .delta = 10, .seed = 1},
                        std::make_unique<sim::FixedDelay>(10));
    for (std::size_t i = 0; i < n; ++i) {
      sim.add_party(std::make_unique<PingParty>(200, payload_bytes));
    }
    const auto stats = sim.run();
    events += stats.events;
    moved_bytes += stats.bytes;
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["payload_B/s"] = benchmark::Counter(
      static_cast<double>(moved_bytes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventLoopThroughputPayload)
    ->Args({16, 0})
    ->Args({16, 1024})
    ->Args({16, 16384});

void BM_FullAaRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    harness::RunSpec spec;
    spec.params.n = n;
    spec.params.ts = 1;
    spec.params.ta = (dim + 1) * 1 + 1 < n ? 1 : 0;
    spec.params.dim = dim;
    spec.params.eps = 1e-2;
    spec.params.delta = 1000;
    spec.network = harness::Network::kSyncJitter;
    spec.adversary = harness::Adversary::kSilent;
    spec.corruptions = 1;
    spec.seed = 7;
    benchmark::DoNotOptimize(harness::execute(spec));
  }
}
BENCHMARK(BM_FullAaRun)->Args({4, 2})->Args({8, 2})->Args({6, 3});

void BM_FullAaRunAsync(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    harness::RunSpec spec;
    spec.params.n = n;
    spec.params.ts = 1;
    spec.params.ta = 1;
    spec.params.dim = 2;
    spec.params.eps = 1e-2;
    spec.params.delta = 1000;
    spec.network = harness::Network::kAsyncReorder;
    spec.adversary = harness::Adversary::kSilent;
    spec.corruptions = 1;
    spec.seed = 7;
    benchmark::DoNotOptimize(harness::execute(spec));
  }
}
BENCHMARK(BM_FullAaRunAsync)->Arg(5)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
