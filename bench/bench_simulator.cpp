// T10 — Substrate microbenchmarks: raw simulator and protocol-stack costs.
//
// Not a paper experiment but the capacity envelope of the testbed itself:
// how many simulated events per second the discrete-event core sustains,
// what one reliable broadcast / one ΠoBC round / one full ΠAA run cost, and
// how that scales with n. Useful when sizing larger sweeps.
//
// `--json PATH` switches to CI mode: two fixed workloads (raw event-loop
// ns/event, one full ΠAA run in ms) measured with harness::time_rate and
// written as hydra-bench-v1 JSON, gated against
// bench/baselines/BENCH_simulator.json by tools/perf_gate. The
// google-benchmark suite is skipped in that mode.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "bench_json.hpp"
#include "harness/runner.hpp"
#include "harness/table.hpp"
#include "sim/delay.hpp"
#include "sim/env.hpp"
#include "sim/simulation.hpp"

using namespace hydra;

namespace {

/// Minimal ping party: floods k self-perpetuating messages, used to measure
/// the raw event-loop overhead without protocol logic.
class PingParty : public sim::IParty {
 public:
  explicit PingParty(int hops, std::size_t payload_bytes = 0)
      : hops_(hops), payload_bytes_(payload_bytes) {}

  void start(sim::Env& env) override {
    env.send((env.self() + 1) % static_cast<PartyId>(env.n()),
             sim::Message{InstanceKey{1, 0, 0}, 0, Bytes(payload_bytes_, 0xab)});
  }

  void on_message(sim::Env& env, PartyId, const sim::Message& msg) override {
    if (static_cast<int>(msg.key.b) >= hops_) return;
    auto next = msg;
    next.key.b += 1;
    env.send((env.self() + 1) % static_cast<PartyId>(env.n()), next);
  }

  void on_timer(sim::Env&, std::uint64_t) override {}

 private:
  int hops_;
  std::size_t payload_bytes_;
};

void BM_EventLoopThroughput(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::Simulation sim({.n = n, .delta = 10, .seed = 1},
                        std::make_unique<sim::FixedDelay>(10));
    for (std::size_t i = 0; i < n; ++i) {
      sim.add_party(std::make_unique<PingParty>(200));
    }
    const auto stats = sim.run();
    events += stats.events;
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventLoopThroughput)->Arg(4)->Arg(16)->Arg(64);

/// Same ping topology but each message drags a payload. Events whose
/// closures own a heap buffer are exactly where the event loop's
/// move-on-pop (vs. copy-then-pop) discipline shows up: with a copying
/// pop every dequeue clones the payload once for nothing.
void BM_EventLoopThroughputPayload(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto payload_bytes = static_cast<std::size_t>(state.range(1));
  std::uint64_t events = 0;
  std::uint64_t moved_bytes = 0;
  for (auto _ : state) {
    sim::Simulation sim({.n = n, .delta = 10, .seed = 1},
                        std::make_unique<sim::FixedDelay>(10));
    for (std::size_t i = 0; i < n; ++i) {
      sim.add_party(std::make_unique<PingParty>(200, payload_bytes));
    }
    const auto stats = sim.run();
    events += stats.events;
    moved_bytes += stats.bytes;
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["payload_B/s"] = benchmark::Counter(
      static_cast<double>(moved_bytes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventLoopThroughputPayload)
    ->Args({16, 0})
    ->Args({16, 1024})
    ->Args({16, 16384});

void BM_FullAaRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    harness::RunSpec spec;
    spec.params.n = n;
    spec.params.ts = 1;
    spec.params.ta = (dim + 1) * 1 + 1 < n ? 1 : 0;
    spec.params.dim = dim;
    spec.params.eps = 1e-2;
    spec.params.delta = 1000;
    spec.network = harness::Network::kSyncJitter;
    spec.adversary = harness::Adversary::kSilent;
    spec.corruptions = 1;
    spec.seed = 7;
    benchmark::DoNotOptimize(harness::execute(spec));
  }
}
BENCHMARK(BM_FullAaRun)->Args({4, 2})->Args({8, 2})->Args({6, 3});

void BM_FullAaRunAsync(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    harness::RunSpec spec;
    spec.params.n = n;
    spec.params.ts = 1;
    spec.params.ta = 1;
    spec.params.dim = 2;
    spec.params.eps = 1e-2;
    spec.params.delta = 1000;
    spec.network = harness::Network::kAsyncReorder;
    spec.adversary = harness::Adversary::kSilent;
    spec.corruptions = 1;
    spec.seed = 7;
    benchmark::DoNotOptimize(harness::execute(spec));
  }
}
BENCHMARK(BM_FullAaRunAsync)->Arg(5)->Arg(8);

/// The CI measurement: the two numbers that size larger sweeps — what one
/// simulated event costs on the lean (obs-disabled) loop, and what one full
/// ΠAA run costs end to end.
std::vector<harness::BenchMetric> measure_simulator() {
  std::vector<harness::BenchMetric> out;

  {  // Raw event-loop throughput, as ns/event (16 parties, message flood).
    std::uint64_t events_per_run = 0;
    const auto run_once = [&events_per_run] {
      sim::Simulation sim({.n = 16, .delta = 10, .seed = 1},
                          std::make_unique<sim::FixedDelay>(10));
      for (std::size_t p = 0; p < 16; ++p) {
        sim.add_party(std::make_unique<PingParty>(200));
      }
      events_per_run = sim.run().events;
    };
    run_once();  // pin the (deterministic) event count before timing
    const auto rate = harness::time_rate(run_once);
    out.push_back({.name = "sim.event_loop",
                   .unit = "ns/event",
                   .value = rate.seconds_per_rep * 1e9 /
                            static_cast<double>(events_per_run),
                   .repetitions = rate.repetitions});
  }
  {  // One full hybrid ΠAA run (n=6, D=2, silent adversary), in ms.
    harness::RunSpec spec;
    spec.params.n = 6;
    spec.params.ts = 1;
    spec.params.ta = 1;
    spec.params.dim = 2;
    spec.params.eps = 1e-2;
    spec.params.delta = 1000;
    spec.network = harness::Network::kSyncJitter;
    spec.adversary = harness::Adversary::kSilent;
    spec.corruptions = 1;
    spec.seed = 7;
    const auto rate = harness::time_rate([&spec] {
      const auto result = harness::execute(spec);
      if (!result.verdict.d_aa()) std::abort();
    });
    out.push_back({.name = "sim.full_aa_run",
                   .unit = "ms/run",
                   .value = rate.seconds_per_rep * 1e3,
                   .repetitions = rate.repetitions});
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = hydra::bench::consume_json_path(argc, argv);
  if (!json_path.empty()) {
    const auto metrics = measure_simulator();
    harness::Table table({"metric", "unit", "value", "repetitions"});
    for (const auto& m : metrics) {
      table.row({m.name, m.unit, harness::fmt(m.value),
                 harness::fmt(m.repetitions)});
    }
    table.print();
    return harness::write_bench_json(json_path, "simulator", metrics) ? 0 : 1;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
