// T1 — Resilience matrix (Theorem 5.19).
//
// The paper's headline claim: ΠAA achieves ts-secure D-AA under synchrony
// and ta-secure D-AA under asynchrony whenever (D+1) ts + ta < n. This
// binary sweeps feasible (n, ts, ta, D) triples, runs the protocol at the
// full tolerated corruption level under both network regimes and a hostile
// adversary mix, and reports the oracle verdicts. It then runs "overload"
// rows — one corruption beyond the threshold — where the guarantees are
// allowed (and expected) to fail, demonstrating the bound is tight in
// practice, matching the Theorem 3.1/3.2 lower bounds.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "harness/sweep.hpp"
#include "harness/table.hpp"

using namespace hydra;
using namespace hydra::harness;

namespace {

struct Row {
  std::size_t dim, n, ts, ta;
};

void run_block(const std::vector<Row>& rows, bool overload, std::size_t jobs) {
  // Build the whole grid first, then execute it on the parallel engine; the
  // table prints in input order regardless of completion order.
  std::vector<RunSpec> grid;
  std::vector<Row> grid_rows;
  for (const auto& r : rows) {
    protocols::Params p;
    p.n = r.n;
    p.ts = r.ts;
    p.ta = r.ta;
    p.dim = r.dim;
    p.eps = 5e-2;
    p.delta = 1000;
    if (!p.feasible()) continue;

    struct Cell {
      Network network;
      std::size_t corruptions;
      Adversary adversary;
    };
    const std::size_t cs = overload ? r.ts + 1 : r.ts;
    const std::size_t ca = overload ? r.ta + 1 : r.ta;
    const std::vector<Cell> cells{
        {Network::kSyncJitter, cs, overload ? Adversary::kOutlier : Adversary::kMixed},
        {Network::kSyncWorstCase, cs, Adversary::kSilent},
        {Network::kAsyncReorder, ca, overload ? Adversary::kOutlier : Adversary::kMixed},
        {Network::kAsyncExponential, ca, Adversary::kSilent},
    };
    for (const auto& cell : cells) {
      if (cell.corruptions >= r.n) continue;
      RunSpec spec;
      spec.params = p;
      spec.workload = Workload::kUniformBall;
      spec.workload_scale = 10.0;
      spec.network = cell.network;
      spec.adversary = cell.corruptions == 0 ? Adversary::kNone : cell.adversary;
      spec.corruptions = cell.corruptions;
      spec.seed = 7 * r.n + 13 * r.ts + r.ta + (overload ? 1000 : 0);
      grid.push_back(std::move(spec));
      grid_rows.push_back(r);
    }
  }

  const auto results = run_sweep(grid, jobs);

  Table table({"D", "n", "ts", "ta", "network", "adversary", "corrupt", "live",
               "valid", "agree", "out-diam"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& r = grid_rows[i];
    const auto& spec = grid[i];
    const auto& result = results[i];
    table.row({fmt(std::uint64_t{r.dim}), fmt(std::uint64_t{r.n}),
               fmt(std::uint64_t{r.ts}), fmt(std::uint64_t{r.ta}),
               to_string(spec.network), to_string(spec.adversary),
               fmt(std::uint64_t{spec.corruptions}), fmt_ok(result.verdict.live),
               fmt_ok(result.verdict.valid), fmt_ok(result.verdict.agreed),
               fmt(result.verdict.output_diameter)});
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t jobs = 0;  // 0 = hardware concurrency
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      jobs = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg.rfind("--jobs=", 0) == 0) {
      jobs = static_cast<std::size_t>(std::strtoull(arg.c_str() + 7, nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: %s [--jobs N]\n", argv[0]);
      return 2;
    }
  }
  const std::vector<Row> rows{
      // D = 1 (n > 2 ts + ta and n > 3 ts for the Bracha substrate)
      {1, 4, 1, 0},
      {1, 5, 1, 1},
      {1, 7, 2, 1},
      // D = 2 (n > 3 ts + ta)
      {2, 4, 1, 0},
      {2, 5, 1, 1},
      {2, 7, 2, 0},
      {2, 8, 2, 1},
      {2, 9, 2, 2},
      // D = 3 (n > 4 ts + ta)
      {3, 5, 1, 0},
      {3, 6, 1, 1},
  };

  std::printf("== T1a: at the tolerated thresholds — every row must read "
              "yes/yes/yes ==\n");
  std::printf("(sync rows corrupt ts parties; async rows corrupt ta; "
              "'mixed' cycles silent/equivocator/outlier/halt-rusher/"
              "spammer/crash)\n\n");
  run_block(rows, /*overload=*/false, jobs);

  std::printf("\n== T1b: one corruption beyond the threshold — failures "
              "expected (bound is tight) ==\n");
  std::printf("(outlier attackers: validity violations surface as valid=NO; "
              "silent attackers: liveness loss)\n\n");
  run_block(rows, /*overload=*/true, jobs);

  std::printf("\nPaper prediction (Thm 5.19 + Thms 3.1/3.2): T1a all-pass; "
              "T1b shows violations at ts+1 / ta+1.\n");
  return 0;
}
