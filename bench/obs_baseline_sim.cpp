#include "obs_baseline_sim.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace hydra::benchobs {

/// Per-party view; mirrors sim::Simulation::PartyEnv minus instrumentation.
class BaselineSim::PartyEnv final : public sim::Env {
 public:
  PartyEnv(BaselineSim* sim, PartyId id) : sim_(sim), id_(id) {}

  void send(PartyId to, sim::Message msg) override {
    HYDRA_ASSERT(to < sim_->parties_.size());
    sim_->deliver(id_, to, std::move(msg));
  }

  void broadcast(const sim::Message& msg) override {
    for (PartyId to = 0; to < sim_->parties_.size(); ++to) {
      sim_->deliver(id_, to, msg);
    }
  }

  void set_timer(Time at, std::uint64_t timer_id) override {
    BaselineSim* sim = sim_;
    const PartyId id = id_;
    sim_->schedule_phase(std::max(at, sim_->now_), Phase::kTimer, [sim, id, timer_id] {
      sim->parties_[id]->on_timer(*sim->envs_[id], timer_id);
    });
  }

  [[nodiscard]] Time now() const override { return sim_->now_; }
  [[nodiscard]] PartyId self() const override { return id_; }
  [[nodiscard]] std::size_t n() const override { return sim_->parties_.size(); }

 private:
  BaselineSim* sim_;
  PartyId id_;
};

BaselineSim::BaselineSim(sim::SimConfig config, std::unique_ptr<sim::DelayModel> delay_model)
    : config_(config), delay_model_(std::move(delay_model)), rng_(config.seed) {
  stats_sent_.assign(config_.n, 0);
}

BaselineSim::~BaselineSim() = default;

void BaselineSim::add_party(std::unique_ptr<sim::IParty> party) {
  const auto id = static_cast<PartyId>(parties_.size());
  parties_.push_back(std::move(party));
  envs_.push_back(std::make_unique<PartyEnv>(this, id));
}

void BaselineSim::schedule_phase(Time at, Phase phase, std::function<void()> fn) {
  queue_.push(Event{at, phase, next_seq_++, std::move(fn)});
}

void BaselineSim::deliver(PartyId from, PartyId to, sim::Message msg) {
  if (from != to) {
    messages_ += 1;
    bytes_ += msg.wire_size();
    stats_sent_[from] += 1;
  }
  const Duration d =
      from == to ? 0 : delay_model_->delay(from, to, now_, msg, rng_);
  HYDRA_ASSERT(from == to || d >= 1);
  BaselineSim* sim = this;
  schedule_phase(now_ + d, Phase::kMessage, [sim, to, msg = std::move(msg), from] {
    sim->parties_[to]->on_message(*sim->envs_[to], from, msg);
  });
}

std::uint64_t BaselineSim::run() {
  for (PartyId id = 0; id < parties_.size(); ++id) {
    BaselineSim* sim = this;
    schedule_phase(0, Phase::kMessage,
                   [sim, id] { sim->parties_[id]->start(*sim->envs_[id]); });
  }
  while (!queue_.empty()) {
    if (events_ >= config_.max_events || queue_.top().at > config_.max_time) break;
    // Move-on-pop, mirroring sim::Simulation: top() is const but the
    // comparator only reads scalar fields, so gutting the closure is safe.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    HYDRA_ASSERT(ev.at >= now_);
    now_ = ev.at;
    events_ += 1;
    ev.fn();
  }
  return events_;
}

}  // namespace hydra::benchobs
