// Guardrail for the observability layer: with obs disabled, the simulator's
// hot path must cost < 2% over an uninstrumented event loop.
//
// There is no uninstrumented build to compare against, so
// obs_baseline_sim.{hpp,cpp} carries a replica of sim::Simulation's event
// loop — same Event struct, ordering, Env virtual dispatch, delay-model draw
// and queue discipline — with the `if (obs::enabled())` branches deleted,
// compiled in its own translation unit so both loops pay the same cross-TU
// inlining boundaries. Both run the same message-flood workload (the
// PingParty pattern from bench_simulator.cpp);
// the gate statistic is the median ratio over back-to-back single-sim A/B
// pairs, which cancels CPU-frequency drift. Exits nonzero when the overhead
// bound is violated, so scripts can gate on it; deliberately NOT registered
// in ctest — wall-clock comparisons are too noisy for a tier-1 gate.
//
// A third loop runs with obs enabled and a record-mode invariant-monitor
// host installed, so the *monitored* overhead is reported alongside — the
// pass/fail gate stays on the disabled path only (monitors are opt-in).
// `--json PATH` writes the measurements in the shared hydra-bench-v1 schema
// (bench_json.hpp) as a machine-readable artifact for CI trend tracking.
//
// The profiler (obs/prof.hpp) is compiled into the instrumented loop but no
// Profiler is installed, so this bench also gates the profiler's DISABLED
// cost: every HYDRA_PROF_SCOPE on the measured path must stay within the
// same 2% budget (one thread-local load + branch each).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/assert.hpp"
#include "common/rng.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "obs_baseline_sim.hpp"
#include "sim/delay.hpp"
#include "sim/env.hpp"
#include "sim/simulation.hpp"

using namespace hydra;

namespace {

/// Self-perpetuating message chain; pure event-loop load, no protocol logic.
class PingParty : public sim::IParty {
 public:
  explicit PingParty(int hops) : hops_(hops) {}

  void start(sim::Env& env) override {
    env.send((env.self() + 1) % static_cast<PartyId>(env.n()),
             sim::Message{InstanceKey{1, 0, 0}, 0, {}});
  }

  void on_message(sim::Env& env, PartyId, const sim::Message& msg) override {
    if (static_cast<int>(msg.key.b) >= hops_) return;
    auto next = msg;
    next.key.b += 1;
    env.send((env.self() + 1) % static_cast<PartyId>(env.n()), next);
  }

  void on_timer(sim::Env&, std::uint64_t) override {}

 private:
  int hops_;
};

// -------------------------------------------------------------------- timing

constexpr std::size_t kParties = 16;
constexpr int kHops = 2000;
constexpr int kSimsPerTrial = 8;
constexpr int kTrials = 9;
constexpr int kPairs = kSimsPerTrial * kTrials;  ///< single-sim A/B pairs

std::uint64_t g_sink = 0;  ///< keeps run() results observable

/// One simulation of the instrumented loop (obs disabled), timed alone.
double time_one_instrumented() {
  const auto start = std::chrono::steady_clock::now();
  sim::Simulation sim({.n = kParties, .delta = 10, .seed = 1},
                      std::make_unique<sim::FixedDelay>(10));
  for (std::size_t p = 0; p < kParties; ++p) {
    sim.add_party(std::make_unique<PingParty>(kHops));
  }
  g_sink += sim.run().events;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// One simulation of the uninstrumented replica, timed alone.
double time_one_baseline() {
  const auto start = std::chrono::steady_clock::now();
  benchobs::BaselineSim sim({.n = kParties, .delta = 10, .seed = 1},
                  std::make_unique<sim::FixedDelay>(10));
  for (std::size_t p = 0; p < kParties; ++p) {
    sim.add_party(std::make_unique<PingParty>(kHops));
  }
  g_sink += sim.run();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Worst-case enabled path: obs on, record-mode monitors installed. The
/// PingParty workload exercises the per-delivery hooks (on_send + the
/// begin/end_dispatch bracket); there are no protocol values so the
/// geometry checks stay idle, which matches the cost monitors add to every
/// message of a real run. Uses a private registry so the global one stays
/// untouched.
double run_monitored() {
  obs::Registry registry;
  obs::MonitorHost monitors(obs::MonitorHost::Config{
      .mode = obs::MonitorMode::kRecord,
      .n = kParties,
      .ts = 0,
      .ta = 0,
      .dim = 1,
      .eps = 1.0,
      .honest = std::vector<bool>(kParties, true),
      .honest_inputs = {},
  });
  obs::Context ctx;
  ctx.registry = &registry;
  ctx.monitors = &monitors;
  ctx.enabled = true;
  const obs::ScopedContext scope(&ctx);

  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kSimsPerTrial; ++i) {
    sim::Simulation sim({.n = kParties, .delta = 10, .seed = 1},
                        std::make_unique<sim::FixedDelay>(10));
    for (std::size_t p = 0; p < kParties; ++p) {
      sim.add_party(std::make_unique<PingParty>(kHops));
    }
    g_sink += sim.run().events;
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = hydra::bench::consume_json_path(argc, argv);
  if (argc != 1) {
    std::fprintf(stderr, "usage: bench_obs_overhead [--json PATH]\n");
    return 2;
  }

  obs::set_enabled(false);  // the pass/fail claim is about the DISABLED path

  // Warmup: fault in code, populate allocator caches for all loops.
  for (int i = 0; i < kSimsPerTrial; ++i) {
    time_one_baseline();
    time_one_instrumented();
  }

  // Single-sim A/B pairs, MEDIAN ratio across pairs. Comparing global minima
  // (best baseline vs best instrumented) lets a CPU-frequency burst during
  // one loop but not the other fabricate an overhead; pairing at the finest
  // granularity (one ~3 ms simulation each, back to back) keeps both sides
  // of a pair inside the same frequency/thermal phase, and alternating which
  // side runs first cancels the residual position bias. The median over the
  // pairs is then robust in both directions: machine noise scatters ratios
  // symmetrically around 1, while a genuine instrumentation cost shifts
  // every ratio. A shared CI machine can still contaminate one whole
  // measurement with transient load, so the gate allows up to three
  // attempts and keeps the best — a real regression fails all of them.
  const auto measure_pairs = [](double& base_out, double& inst_out) {
    std::vector<double> ratios;
    ratios.reserve(kPairs);
    double base_total = 0.0;
    double inst_total = 0.0;
    for (int t = 0; t < kPairs; ++t) {
      double base = 0.0;
      double inst = 0.0;
      if (t % 2 == 0) {
        base = time_one_baseline();
        inst = time_one_instrumented();
      } else {
        inst = time_one_instrumented();
        base = time_one_baseline();
      }
      ratios.push_back(inst / base);
      base_total += base;
      inst_total += inst;
    }
    std::sort(ratios.begin(), ratios.end());
    // Per-trial (kSimsPerTrial sims) means, for display/JSON.
    base_out = base_total / kTrials;
    inst_out = inst_total / kTrials;
    return ratios[ratios.size() / 2];
  };

  constexpr double kBudget = 0.02;
  constexpr int kMaxAttempts = 3;
  double best_base = 0.0;
  double best_inst = 0.0;
  double best_ratio = measure_pairs(best_base, best_inst);
  for (int a = 1; a < kMaxAttempts && best_ratio - 1.0 >= kBudget; ++a) {
    double base = 0.0;
    double inst = 0.0;
    const double ratio = measure_pairs(base, inst);
    if (ratio < best_ratio) {
      best_ratio = ratio;
      best_base = base;
      best_inst = inst;
    }
  }

  // The monitored loop is informational (not gated), so it runs after the
  // gated pairs to leave their trial cadence untouched.
  double best_mon = 1e9;
  run_monitored();
  for (int t = 0; t < kTrials; ++t) {
    best_mon = std::min(best_mon, run_monitored());
  }

  const double overhead = best_ratio - 1.0;
  const double mon_overhead = best_mon / best_base - 1.0;
  std::printf("obs-disabled overhead: %.2f%%  (median ratio over %d A/B pairs; "
              "mean instrumented %.1f ms, mean baseline %.1f ms per %d sims; "
              "%llu events)\n",
              overhead * 100.0, kPairs, best_inst * 1e3, best_base * 1e3,
              kSimsPerTrial, static_cast<unsigned long long>(g_sink));
  std::printf("monitors-on overhead:  %.2f%%  (monitored %.1f ms; informational, "
              "not gated)\n",
              mon_overhead * 100.0, best_mon * 1e3);
  const bool pass = overhead < kBudget;

  if (!json_path.empty()) {
    // hydra-bench-v1, like every other bench. The gate statistic is the
    // ratio metric; the ms rows give it scale. Units are lower-is-better by
    // schema convention, which holds for all of these.
    const std::vector<hydra::harness::BenchMetric> metrics{
        {.name = "obs.disabled_overhead",
         .unit = "ratio",
         .value = overhead,
         .repetitions = kPairs},
        {.name = "obs.monitor_overhead",
         .unit = "ratio",
         .value = mon_overhead,
         .repetitions = kTrials},
        {.name = "obs.baseline",
         .unit = "ms/trial",
         .value = best_base * 1e3,
         .repetitions = kPairs},
        {.name = "obs.disabled",
         .unit = "ms/trial",
         .value = best_inst * 1e3,
         .repetitions = kPairs},
        {.name = "obs.monitored",
         .unit = "ms/trial",
         .value = best_mon * 1e3,
         .repetitions = kTrials},
    };
    if (!hydra::harness::write_bench_json(json_path, "obs_overhead", metrics)) {
      return 2;
    }
  }

  if (!pass) {
    std::printf("FAIL: disabled-path overhead >= 2%%\n");
    return 1;
  }
  std::printf("OK: below the 2%% budget\n");
  return 0;
}
