// Guardrail for the observability layer: with obs disabled, the simulator's
// hot path must cost < 2% over an uninstrumented event loop.
//
// There is no uninstrumented build to compare against, so this file carries
// a replica of sim::Simulation's event loop — same Event struct, ordering,
// Env virtual dispatch, delay-model draw and queue discipline — with the
// `if (obs::enabled())` branches deleted. Both loops run the same
// message-flood workload (the PingParty pattern from bench_simulator.cpp);
// best-of-N wall times are compared. Exits nonzero when the overhead bound
// is violated, so scripts can gate on it; deliberately NOT registered in
// ctest — wall-clock comparisons are too noisy for a tier-1 gate.
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "sim/delay.hpp"
#include "sim/env.hpp"
#include "sim/simulation.hpp"

using namespace hydra;

namespace {

/// Self-perpetuating message chain; pure event-loop load, no protocol logic.
class PingParty : public sim::IParty {
 public:
  explicit PingParty(int hops) : hops_(hops) {}

  void start(sim::Env& env) override {
    env.send((env.self() + 1) % static_cast<PartyId>(env.n()),
             sim::Message{InstanceKey{1, 0, 0}, 0, {}});
  }

  void on_message(sim::Env& env, PartyId, const sim::Message& msg) override {
    if (static_cast<int>(msg.key.b) >= hops_) return;
    auto next = msg;
    next.key.b += 1;
    env.send((env.self() + 1) % static_cast<PartyId>(env.n()), next);
  }

  void on_timer(sim::Env&, std::uint64_t) override {}

 private:
  int hops_;
};

// ----------------------------------------------------- uninstrumented replica

/// sim::Simulation with the obs branches deleted; everything else — event
/// struct, tie-breaking, Env dispatch, delay draws — mirrors the original so
/// the timing difference isolates the disabled-path instrumentation cost.
class BaselineSim {
 public:
  BaselineSim(sim::SimConfig config, std::unique_ptr<sim::DelayModel> delay_model)
      : config_(config), delay_model_(std::move(delay_model)), rng_(config.seed) {
    stats_sent_.assign(config_.n, 0);
  }

  void add_party(std::unique_ptr<sim::IParty> party) {
    const auto id = static_cast<PartyId>(parties_.size());
    parties_.push_back(std::move(party));
    envs_.push_back(std::make_unique<PartyEnv>(this, id));
  }

  std::uint64_t run() {
    for (PartyId id = 0; id < parties_.size(); ++id) {
      BaselineSim* sim = this;
      schedule_phase(0, Phase::kMessage,
                     [sim, id] { sim->parties_[id]->start(*sim->envs_[id]); });
    }
    while (!queue_.empty()) {
      if (events_ >= config_.max_events || queue_.top().at > config_.max_time) break;
      Event ev = queue_.top();
      queue_.pop();
      HYDRA_ASSERT(ev.at >= now_);
      now_ = ev.at;
      events_ += 1;
      ev.fn();
    }
    return events_;
  }

 private:
  class PartyEnv final : public sim::Env {
   public:
    PartyEnv(BaselineSim* sim, PartyId id) : sim_(sim), id_(id) {}

    void send(PartyId to, sim::Message msg) override {
      HYDRA_ASSERT(to < sim_->parties_.size());
      sim_->deliver(id_, to, std::move(msg));
    }
    void broadcast(const sim::Message& msg) override {
      for (PartyId to = 0; to < sim_->parties_.size(); ++to) {
        sim_->deliver(id_, to, msg);
      }
    }
    void set_timer(Time at, std::uint64_t timer_id) override {
      BaselineSim* sim = sim_;
      const PartyId id = id_;
      sim_->schedule_phase(std::max(at, sim_->now_), Phase::kTimer, [sim, id, timer_id] {
        sim->parties_[id]->on_timer(*sim->envs_[id], timer_id);
      });
    }
    [[nodiscard]] Time now() const override { return sim_->now_; }
    [[nodiscard]] PartyId self() const override { return id_; }
    [[nodiscard]] std::size_t n() const override { return sim_->parties_.size(); }

   private:
    BaselineSim* sim_;
    PartyId id_;
  };

  enum class Phase : std::uint8_t { kMessage = 0, kTimer = 1 };

  struct Event {
    Time at;
    Phase phase;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      if (a.phase != b.phase) return a.phase > b.phase;
      return a.seq > b.seq;
    }
  };

  void schedule_phase(Time at, Phase phase, std::function<void()> fn) {
    queue_.push(Event{at, phase, next_seq_++, std::move(fn)});
  }

  void deliver(PartyId from, PartyId to, sim::Message msg) {
    messages_ += 1;
    bytes_ += msg.wire_size();
    stats_sent_[from] += 1;
    const Duration d =
        from == to ? 0 : delay_model_->delay(from, to, now_, msg, rng_);
    HYDRA_ASSERT(from == to || d >= 1);
    BaselineSim* sim = this;
    schedule_phase(now_ + d, Phase::kMessage, [sim, to, msg = std::move(msg), from] {
      sim->parties_[to]->on_message(*sim->envs_[to], from, msg);
    });
  }

  sim::SimConfig config_;
  std::unique_ptr<sim::DelayModel> delay_model_;
  Rng rng_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::uint64_t next_seq_ = 0;
  std::vector<std::unique_ptr<sim::IParty>> parties_;
  std::vector<std::unique_ptr<PartyEnv>> envs_;
  Time now_ = 0;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t events_ = 0;
  std::vector<std::uint64_t> stats_sent_;
};

// -------------------------------------------------------------------- timing

constexpr std::size_t kParties = 16;
constexpr int kHops = 2000;
constexpr int kSimsPerTrial = 8;
constexpr int kTrials = 9;

std::uint64_t g_sink = 0;  ///< keeps run() results observable

double run_instrumented() {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kSimsPerTrial; ++i) {
    sim::Simulation sim({.n = kParties, .delta = 10, .seed = 1},
                        std::make_unique<sim::FixedDelay>(10));
    for (std::size_t p = 0; p < kParties; ++p) {
      sim.add_party(std::make_unique<PingParty>(kHops));
    }
    g_sink += sim.run().events;
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

double run_baseline() {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kSimsPerTrial; ++i) {
    BaselineSim sim({.n = kParties, .delta = 10, .seed = 1},
                    std::make_unique<sim::FixedDelay>(10));
    for (std::size_t p = 0; p < kParties; ++p) {
      sim.add_party(std::make_unique<PingParty>(kHops));
    }
    g_sink += sim.run();
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

int main() {
  obs::set_enabled(false);  // the claim under test is about the DISABLED path

  // Warmup: fault in code, populate allocator caches for both loops.
  run_baseline();
  run_instrumented();

  double best_base = 1e9;
  double best_inst = 1e9;
  for (int t = 0; t < kTrials; ++t) {
    // Interleave so slow machine phases (thermal, noisy neighbours) hit both.
    best_base = std::min(best_base, run_baseline());
    best_inst = std::min(best_inst, run_instrumented());
  }

  const double overhead = best_inst / best_base - 1.0;
  std::printf("obs-disabled overhead: %.2f%%  (instrumented %.1f ms vs baseline "
              "%.1f ms, best of %d; %llu events)\n",
              overhead * 100.0, best_inst * 1e3, best_base * 1e3, kTrials,
              static_cast<unsigned long long>(g_sink));
  if (overhead >= 0.02) {
    std::printf("FAIL: disabled-path overhead >= 2%%\n");
    return 1;
  }
  std::printf("OK: below the 2%% budget\n");
  return 0;
}
