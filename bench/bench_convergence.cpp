// T2 — Convergence factor (Lemmas 5.14 / 5.15).
//
// Part A validates Lemma 5.15 where it actually bites: over adversarially
// constructed PAIRS of ΠoBC-legal views. Two honest parties' output sets
// M1, M2 satisfy (Theorem 4.4): per-party values consistent, |M1 ∩ M2| >=
// n - ts, |M1 ∪ M2| <= n. For each trial we draw honest values, let the
// adversary pick Byzantine values (far outliers, near-duplicates, or hull
// stretchers) and which legal subsets each view sees, run the ΠAA-it rule
// on both views, and check delta(v1, v2) <= sqrt(7/8) * delta_max(honest).
//
// Part B reports the end-to-end view: in full protocol runs the witness
// exchange shares so much information that honest views (and hence values)
// typically collapse within one or two iterations — far faster than the
// worst-case bound, which is the practical takeaway.
#include <cmath>
#include <cstdio>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "harness/runner.hpp"
#include "harness/sweep.hpp"
#include "harness/table.hpp"
#include "protocols/aa_iteration.hpp"
#include "protocols/codec.hpp"

using namespace hydra;
using namespace hydra::harness;
using protocols::PairList;

namespace {

struct LemmaCase {
  std::size_t dim, n, ts, ta;
};

/// Adversarial Byzantine value generators.
geo::Vec byz_value(Rng& rng, std::size_t dim, double scale, int strategy,
                   const std::vector<geo::Vec>& honest) {
  switch (strategy % 3) {
    case 0: {  // far outlier
      geo::Vec v(dim, 0.0);
      for (std::size_t d = 0; d < dim; ++d) {
        v[d] = (rng.next_below(2) != 0u ? 1.0 : -1.0) * scale * 1e4;
      }
      return v;
    }
    case 1:  // near-duplicate of an honest value (degeneracy attack)
      return honest[rng.next_below(honest.size())];
    default: {  // hull stretcher: just outside the honest spread
      geo::Vec v = honest[rng.next_below(honest.size())];
      for (std::size_t d = 0; d < dim; ++d) v[d] += rng.next_double(-2.0, 2.0) * scale;
      return v;
    }
  }
}

/// One adversarial view pair; returns the contraction ratio achieved.
double view_pair_ratio(Rng& rng, const LemmaCase& c, bool synchronous) {
  const double scale = 10.0;
  const std::size_t corruptions = synchronous ? c.ts : c.ta;

  // Party values: ids [corruptions, n) honest, [0, corruptions) Byzantine.
  std::vector<geo::Vec> honest;
  for (std::size_t i = corruptions; i < c.n; ++i) {
    geo::Vec v(c.dim, 0.0);
    for (std::size_t d = 0; d < c.dim; ++d) v[d] = rng.next_double(-scale, scale);
    honest.push_back(std::move(v));
  }
  std::vector<geo::Vec> values(c.n, geo::Vec(c.dim, 0.0));
  for (std::size_t i = 0; i < corruptions; ++i) {
    values[i] = byz_value(rng, c.dim, scale, static_cast<int>(rng.next_below(3)), honest);
  }
  for (std::size_t i = corruptions; i < c.n; ++i) values[i] = honest[i - corruptions];

  // Legal views. Under synchrony a view contains every honest pair plus an
  // arbitrary subset of Byzantine pairs; under asynchrony a view is any
  // >= n - ts pairs as long as the two views share >= n - ts pairs. We give
  // both views all honest pairs (the async overlap is then automatic) and
  // let the adversary choose Byzantine inclusion per view independently.
  const auto make_view = [&](std::uint64_t include_mask) {
    PairList m;
    for (std::size_t i = 0; i < c.n; ++i) {
      const bool byz = i < corruptions;
      if (!byz || ((include_mask >> i) & 1u) != 0) {
        m.emplace_back(static_cast<PartyId>(i), values[i]);
      }
    }
    return m;
  };

  protocols::Params p;
  p.n = c.n;
  p.ts = c.ts;
  p.ta = c.ta;
  p.dim = c.dim;
  const auto m1 = make_view(rng.next_u64());
  const auto m2 = make_view(rng.next_u64());
  const geo::Vec v1 = protocols::compute_new_value(p, m1);
  const geo::Vec v2 = protocols::compute_new_value(p, m2);

  const double honest_diam = geo::diameter(honest);
  if (honest_diam < 1e-12) return 0.0;
  return geo::distance(v1, v2) / honest_diam;
}

}  // namespace

int main() {
  const double bound = std::sqrt(7.0 / 8.0);
  std::printf("== T2a: Lemma 5.15 over adversarial ΠoBC-legal view pairs ==\n");
  std::printf("theory: delta(v, v') <= sqrt(7/8) * delta_max(honest) = %.6f * "
              "diam\n\n",
              bound);

  Table table({"D", "n", "ts", "ta", "regime", "trials", "worst ratio", "mean ratio",
               "<= bound?"});
  const std::vector<LemmaCase> cases{
      {1, 4, 1, 0}, {1, 5, 1, 1}, {1, 7, 2, 1}, {2, 4, 1, 0}, {2, 5, 1, 1},
      {2, 8, 2, 1}, {2, 9, 2, 2}, {3, 5, 1, 0}, {3, 6, 1, 1},
  };

  bool all_ok = true;
  for (const auto& c : cases) {
    for (const bool synchronous : {true, false}) {
      if (!synchronous && c.ta == 0) continue;
      Rng rng(1000 * c.n + 10 * c.ts + c.ta + (synchronous ? 0 : 7));
      const int trials = c.dim >= 3 ? 60 : 300;
      double worst = 0.0;
      double sum = 0.0;
      for (int trial = 0; trial < trials; ++trial) {
        const double ratio = view_pair_ratio(rng, c, synchronous);
        worst = std::max(worst, ratio);
        sum += ratio;
      }
      const bool ok = worst <= bound + 1e-6;
      all_ok = all_ok && ok;
      table.row({fmt(std::uint64_t{c.dim}), fmt(std::uint64_t{c.n}),
                 fmt(std::uint64_t{c.ts}), fmt(std::uint64_t{c.ta}),
                 synchronous ? "sync" : "async", fmt(std::uint64_t(trials)),
                 fmt(worst), fmt(sum / trials), fmt_ok(ok)});
    }
  }
  table.print();

  std::printf("\n== T2b: end-to-end — iterations until honest values coincide "
              "==\n");
  std::printf("(full protocol runs; the witness exchange typically collapses "
              "views within 1-2 iterations, far faster than worst case)\n\n");
  Table table_b({"D", "n", "ts", "ta", "network", "adversary", "T_est",
                 "iters-to-collapse", "agree"});
  struct RunCase {
    std::size_t dim, n, ts, ta;
    Network network;
    Adversary adversary;
    std::size_t corruptions;
  };
  const std::vector<RunCase> runs{
      {2, 8, 2, 1, Network::kAsyncExponential, Adversary::kOutlier, 2},
      {2, 8, 2, 1, Network::kAsyncReorder, Adversary::kOutlier, 1},
      {2, 5, 1, 1, Network::kAsyncExponential, Adversary::kNone, 0},
      {3, 6, 1, 1, Network::kAsyncExponential, Adversary::kOutlier, 1},
  };
  // Full protocol runs are independent, so execute them on the parallel
  // engine; results come back in input order.
  std::vector<RunSpec> grid;
  grid.reserve(runs.size());
  for (const auto& rc : runs) {
    RunSpec spec;
    spec.params.n = rc.n;
    spec.params.ts = rc.ts;
    spec.params.ta = rc.ta;
    spec.params.dim = rc.dim;
    spec.params.eps = 1e-2;
    spec.params.delta = 1000;
    spec.workload = Workload::kGaussian;
    spec.workload_scale = 20.0;
    spec.network = rc.network;
    spec.adversary = rc.adversary;
    spec.corruptions = rc.corruptions;
    spec.seed = 11 * rc.n + rc.corruptions;
    grid.push_back(std::move(spec));
  }
  const auto results = run_sweep(grid);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& rc = runs[i];
    const auto& result = results[i];
    std::size_t collapse = result.iteration_diameters.size();
    for (std::size_t i = 0; i < result.iteration_diameters.size(); ++i) {
      if (result.iteration_diameters[i] <= 1e-12) {
        collapse = i;
        break;
      }
    }
    table_b.row({fmt(std::uint64_t{rc.dim}), fmt(std::uint64_t{rc.n}),
                 fmt(std::uint64_t{rc.ts}), fmt(std::uint64_t{rc.ta}),
                 to_string(rc.network), to_string(rc.adversary),
                 fmt(result.min_estimate), fmt(std::uint64_t(collapse)),
                 fmt_ok(result.verdict.agreed)});
  }
  table_b.print();

  std::printf("\nPaper prediction: T2a worst ratios <= %.4f everywhere. "
              "Measured: %s. T2b shows practice beats the bound by orders of "
              "magnitude.\n",
              bound, all_ok ? "all within the bound" : "VIOLATION (see table)");
  return all_ok ? 0 : 1;
}
