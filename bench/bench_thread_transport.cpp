// T7 — Real-thread transport runs.
//
// The protocol objects that the simulator drives also run on one OS thread
// per party with wall-clock timers and mutex/condvar mailboxes. This binary
// executes ΠAA on the thread transport across configurations and reports
// wall time, traffic and the D-AA verdict — demonstrating the code is not a
// simulator artifact.
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "faults/faults.hpp"
#include "geometry/convex.hpp"
#include "harness/table.hpp"
#include "harness/workloads.hpp"
#include "protocols/aa.hpp"
#include "sim/delay.hpp"
#include "transport/thread_net.hpp"

using namespace hydra;
using protocols::AaParty;
using protocols::Params;

namespace {

struct Case {
  std::size_t n, ts, ta, dim;
  bool async_delays;
  const char* faults = "";  ///< docs/ROBUSTNESS.md grammar; "" = clean run
};

}  // namespace

int main() {
  std::printf("== T7: ΠAA on the real-thread transport (1 OS thread per party, "
              "1 tick = 20 us) ==\n\n");
  harness::Table table({"n", "ts", "ta", "D", "delays", "faults", "wall ms",
                        "messages", "out-diam", "live", "valid", "agree"});

  const std::vector<Case> cases{
      {4, 1, 0, 2, false},
      {5, 1, 1, 2, false},
      {5, 1, 1, 2, true},
      {5, 1, 0, 3, false},
      {7, 2, 0, 2, false},
      // Duplication + bounded reorder must not change any verdict: the
      // protocol tolerates both, and the injector clamps skew to delta in
      // synchronous networks (docs/ROBUSTNESS.md).
      {5, 1, 1, 2, false, "dup(p=0.3);reorder(p=0.3,skew=250)"},
  };

  for (const auto& c : cases) {
    Params p;
    p.n = c.n;
    p.ts = c.ts;
    p.ta = c.ta;
    p.dim = c.dim;
    p.eps = 1e-2;
    p.delta = 500;
    const auto inputs =
        harness::make_inputs(harness::Workload::kUniformBall, c.n, c.dim, 5.0, c.n);

    std::unique_ptr<sim::DelayModel> model;
    if (c.async_delays) {
      model = std::make_unique<sim::ExponentialDelay>(1.5 * static_cast<double>(p.delta),
                                                      6 * p.delta);
    } else {
      model = std::make_unique<sim::UniformDelay>(1, p.delta / 4);
    }
    transport::ThreadNetwork net(
        {.n = c.n, .delta = p.delta, .us_per_tick = 20.0, .seed = c.n,
         .timeout_ms = 60'000},
        std::move(model));

    std::string fault_error;
    const auto plan = faults::parse_fault_plan(c.faults, &fault_error);
    HYDRA_ASSERT_MSG(plan.has_value(), fault_error.c_str());
    std::optional<faults::FaultInjector> injector;
    if (!plan->empty()) {
      injector.emplace(*plan, faults::FaultInjector::Config{
                                  .seed = c.n, .synchronous = !c.async_delays,
                                  .delta = p.delta});
      net.set_fault_injector(&*injector);
    }

    std::vector<std::unique_ptr<sim::IParty>> parties;
    std::vector<AaParty*> raw;
    for (std::size_t i = 0; i < c.n; ++i) {
      auto party = std::make_unique<AaParty>(p, inputs[i]);
      raw.push_back(party.get());
      parties.push_back(std::move(party));
    }
    const auto stats = net.run(parties, [](const sim::IParty& party, PartyId) {
      return static_cast<const AaParty&>(party).has_output();
    });

    std::vector<geo::Vec> outputs;
    bool valid = true;
    for (auto* party : raw) {
      if (party->has_output()) {
        outputs.push_back(party->output());
        valid = valid && geo::in_convex_hull(inputs, party->output(), 1e-4);
      }
    }
    const bool live = outputs.size() == c.n && !stats.timed_out;
    const double diam = geo::diameter(outputs);
    table.row({harness::fmt(std::uint64_t{c.n}), harness::fmt(std::uint64_t{c.ts}),
               harness::fmt(std::uint64_t{c.ta}), harness::fmt(std::uint64_t{c.dim}),
               c.async_delays ? "async-exp" : "sync-jitter",
               c.faults[0] != '\0' ? "dup+reorder" : "-",
               harness::fmt(std::uint64_t(stats.wall_ms)), harness::fmt(stats.messages),
               harness::fmt(diam), harness::fmt_ok(live), harness::fmt_ok(valid),
               harness::fmt_ok(diam <= p.eps + 1e-9)});
  }
  table.print();
  std::printf("\nExpectation: every row live/valid/agree = yes on genuine "
              "threads, matching the simulator results.\n");
  return 0;
}
