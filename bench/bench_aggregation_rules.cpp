// T8 — Aggregation-rule ablation (DESIGN.md decision follow-up).
//
// The paper adopts the diameter-midpoint rule of [Függer-Nowak 18], which
// carries the proven sqrt(7/8) per-iteration contraction. A natural
// alternative is the centroid of the safe area's extreme points. This
// ablation measures, over the same adversarial view pairs as T2a:
//   * the worst and mean contraction ratio of both rules, and
//   * whether end-to-end runs still reach eps-agreement with the centroid
//     rule (they do — the halting estimate is computed from the SAME
//     sqrt(7/8) formula, so if the centroid contracted slower than the
//     bound it would surface as agreement failures).
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "harness/runner.hpp"
#include "harness/table.hpp"
#include "protocols/aa_iteration.hpp"
#include "protocols/codec.hpp"

using namespace hydra;
using namespace hydra::harness;
using protocols::Aggregation;
using protocols::PairList;

namespace {

struct Stats {
  double worst = 0.0;
  double mean = 0.0;
};

Stats measure_rule(Aggregation aggregation, std::size_t dim, std::size_t n,
                   std::size_t ts, std::size_t ta, std::uint64_t seed, int trials) {
  Rng rng(seed);
  const double scale = 10.0;
  double worst = 0.0;
  double sum = 0.0;
  int counted = 0;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<geo::Vec> honest;
    for (std::size_t i = ts; i < n; ++i) {
      geo::Vec v(dim, 0.0);
      for (std::size_t d = 0; d < dim; ++d) v[d] = rng.next_double(-scale, scale);
      honest.push_back(std::move(v));
    }
    std::vector<geo::Vec> values(n, geo::Vec(dim, 0.0));
    for (std::size_t i = 0; i < ts; ++i) {
      geo::Vec v(dim, 0.0);
      for (std::size_t d = 0; d < dim; ++d) {
        v[d] = (rng.next_below(2) != 0u ? 1.0 : -1.0) * scale * 100.0;
      }
      values[i] = v;
    }
    for (std::size_t i = ts; i < n; ++i) values[i] = honest[i - ts];

    const auto view = [&](std::uint64_t mask) {
      PairList m;
      for (std::size_t i = 0; i < n; ++i) {
        if (i >= ts || ((mask >> i) & 1u) != 0) {
          m.emplace_back(static_cast<PartyId>(i), values[i]);
        }
      }
      return m;
    };
    protocols::Params p;
    p.n = n;
    p.ts = ts;
    p.ta = ta;
    p.dim = dim;
    p.aggregation = aggregation;
    const auto m1 = view(rng.next_u64());
    const auto m2 = view(rng.next_u64());
    const double hd = geo::diameter(honest);
    if (hd < 1e-12) continue;
    const double ratio =
        geo::distance(protocols::compute_new_value(p, m1),
                      protocols::compute_new_value(p, m2)) /
        hd;
    worst = std::max(worst, ratio);
    sum += ratio;
    ++counted;
  }
  return {worst, counted > 0 ? sum / counted : 0.0};
}

}  // namespace

int main() {
  const double bound = std::sqrt(7.0 / 8.0);
  std::printf("== T8: aggregation-rule ablation — diameter midpoint (paper) vs "
              "extreme-point centroid ==\n\n");

  Table table({"D", "n", "ts", "ta", "rule", "worst ratio", "mean ratio",
               "proven bound?"});
  struct Case {
    std::size_t dim, n, ts, ta;
  };
  const std::vector<Case> cases{
      {1, 5, 1, 1}, {2, 5, 1, 1}, {2, 8, 2, 1}, {3, 6, 1, 1},
  };
  for (const auto& c : cases) {
    const int trials = c.dim >= 3 ? 60 : 250;
    for (const auto agg : {Aggregation::kDiameterMidpoint, Aggregation::kCentroid}) {
      const auto stats =
          measure_rule(agg, c.dim, c.n, c.ts, c.ta, 31 * c.n + c.dim, trials);
      table.row({fmt(std::uint64_t{c.dim}), fmt(std::uint64_t{c.n}),
                 fmt(std::uint64_t{c.ts}), fmt(std::uint64_t{c.ta}),
                 agg == Aggregation::kCentroid ? "centroid" : "midpoint",
                 fmt(stats.worst), fmt(stats.mean),
                 agg == Aggregation::kCentroid ? "no (measured only)"
                                               : "yes, sqrt(7/8)"});
    }
  }
  table.print();
  std::printf("(bound for the midpoint rule: %.4f)\n\n", bound);

  std::printf("End-to-end check: full runs with each rule (async, hostile "
              "mix) —\n");
  Table runs({"rule", "live", "valid", "agree", "out-diam"});
  for (const auto agg : {Aggregation::kDiameterMidpoint, Aggregation::kCentroid}) {
    RunSpec spec;
    spec.params.n = 8;
    spec.params.ts = 2;
    spec.params.ta = 1;
    spec.params.dim = 2;
    spec.params.eps = 1e-2;
    spec.params.delta = 1000;
    spec.params.aggregation = agg;
    spec.workload = Workload::kGaussian;
    spec.workload_scale = 20.0;
    spec.network = Network::kAsyncReorder;
    spec.adversary = Adversary::kMixed;
    spec.corruptions = 1;
    spec.seed = 93;
    const auto result = execute(spec);
    runs.row({agg == Aggregation::kCentroid ? "centroid" : "midpoint",
              fmt_ok(result.verdict.live), fmt_ok(result.verdict.valid),
              fmt_ok(result.verdict.agreed), fmt(result.verdict.output_diameter)});
  }
  runs.print();
  std::printf("\nTakeaway: the centroid often contracts faster on average but "
              "lacks a worst-case guarantee; the paper's midpoint rule is the "
              "safe default.\n");
  return 0;
}
