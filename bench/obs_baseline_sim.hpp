// Uninstrumented replica of sim::Simulation for bench_obs_overhead.
//
// The replica deliberately lives in its own translation unit: the real
// simulator's hot path sits behind the libhydra_sim TU boundary, so if the
// replica were defined next to the timing loop the optimizer could inline
// and devirtualize call chains the real simulator cannot — the measured
// "overhead" would then be mostly cross-TU codegen differences, not the
// cost of the deleted `if (obs::enabled())` branches. Keeping both sides
// behind the same kind of boundary isolates the instrumentation cost.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/delay.hpp"
#include "sim/env.hpp"
#include "sim/message.hpp"
#include "sim/simulation.hpp"

namespace hydra::benchobs {

/// sim::Simulation with the obs branches deleted; everything else — event
/// struct, tie-breaking, Env dispatch, delay draws — mirrors the original so
/// the timing difference isolates the disabled-path instrumentation cost.
class BaselineSim {
 public:
  BaselineSim(sim::SimConfig config, std::unique_ptr<sim::DelayModel> delay_model);
  ~BaselineSim();

  BaselineSim(const BaselineSim&) = delete;
  BaselineSim& operator=(const BaselineSim&) = delete;

  void add_party(std::unique_ptr<sim::IParty> party);

  /// Drains the queue; returns the number of events processed.
  std::uint64_t run();

 private:
  class PartyEnv;

  enum class Phase : std::uint8_t { kMessage = 0, kTimer = 1 };

  struct Event {
    Time at;
    Phase phase;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      if (a.phase != b.phase) return a.phase > b.phase;
      return a.seq > b.seq;
    }
  };

  void schedule_phase(Time at, Phase phase, std::function<void()> fn);
  void deliver(PartyId from, PartyId to, sim::Message msg);

  sim::SimConfig config_;
  std::unique_ptr<sim::DelayModel> delay_model_;
  Rng rng_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::uint64_t next_seq_ = 0;
  std::vector<std::unique_ptr<sim::IParty>> parties_;
  std::vector<std::unique_ptr<PartyEnv>> envs_;
  Time now_ = 0;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t events_ = 0;
  std::vector<std::uint64_t> stats_sent_;
};

}  // namespace hydra::benchobs
