// T4 — Baseline comparison: the paper's Table-1-shaped story.
//
//   sync-lockstep (Vaidya-Garg [32]) : (D+1) t < n, synchrony only;
//   async-mh (Mendes-Herlihy [26])   : (D+2) t < n, both regimes;
//   hybrid (this paper)              : ts under synchrony AND ta under
//                                      asynchrony when (D+1) ts + ta < n.
//
// Three scenes:
//   A. sync network, t = 2, n = 7, D = 2: (D+1)t = 6 < 7 but (D+2)t = 8 > 7
//      -> lockstep and hybrid(ts=2, ta=0) succeed; async-mh cannot even be
//      instantiated at this threshold.
//   B. async network, same n: lockstep silently breaks; hybrid(ts=2, ta=0)
//      has no async guarantee at ta=0 < actual corruptions... so we show
//      hybrid at (ts=2, ta=1) vs 1 corruption: guarantees hold.
//   C. head-to-head grid over both networks at matched thresholds.
#include <cstdio>
#include <vector>

#include "baselines/async_mh.hpp"
#include "harness/runner.hpp"
#include "harness/table.hpp"

using namespace hydra;
using namespace hydra::harness;

namespace {

void scene(const char* title, const std::vector<RunSpec>& specs,
           const std::vector<std::string>& notes) {
  std::printf("%s\n", title);
  Table table({"protocol", "n", "ts", "ta", "network", "adversary", "corrupt",
               "live", "valid", "agree", "out-diam", "note"});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& spec = specs[i];
    const auto result = execute(spec);
    table.row({to_string(spec.protocol), fmt(std::uint64_t{spec.params.n}),
               fmt(std::uint64_t{spec.params.ts}), fmt(std::uint64_t{spec.params.ta}),
               to_string(spec.network), to_string(spec.adversary),
               fmt(std::uint64_t{spec.corruptions}), fmt_ok(result.verdict.live),
               fmt_ok(result.verdict.valid), fmt_ok(result.verdict.agreed),
               fmt(result.verdict.output_diameter), notes[i]});
  }
  table.print();
  std::printf("\n");
}

RunSpec base_spec(Protocol protocol, std::size_t n, std::size_t ts, std::size_t ta,
                  Network network, Adversary adversary, std::size_t corruptions,
                  std::uint64_t seed) {
  RunSpec spec;
  spec.protocol = protocol;
  spec.params.n = n;
  spec.params.ts = ts;
  spec.params.ta = ta;
  spec.params.dim = 2;
  spec.params.eps = 5e-2;
  spec.params.delta = 1000;
  spec.workload = Workload::kUniformBall;
  spec.workload_scale = 10.0;
  spec.network = network;
  spec.adversary = adversary;
  spec.corruptions = corruptions;
  spec.seed = seed;
  return spec;
}

}  // namespace

int main() {
  std::printf("== T4: hybrid protocol vs the two classical baselines (D = 2) ==\n\n");

  std::printf("Scene A: synchronous network, t = 2 of n = 7 corrupted.\n");
  std::printf("  async-mh needs (D+2) t < n = 8 < 7: INFEASIBLE — cannot be "
              "instantiated (printed as the paper's '-' cell).\n");
  scene("",
        {
            base_spec(Protocol::kSyncLockstep, 7, 2, 0, Network::kSyncJitter,
                      Adversary::kSilent, 2, 1),
            base_spec(Protocol::kHybrid, 7, 2, 0, Network::kSyncJitter,
                      Adversary::kSilent, 2, 2),
            base_spec(Protocol::kHybrid, 7, 2, 0, Network::kSyncJitter,
                      Adversary::kMixed, 2, 3),
        },
        {"baseline OK at (D+1)t<n", "hybrid matches it", "hybrid, hostile mix"});
  std::printf("  async-mh at (n=7, t=2, D=2): feasible = %s (needs n > 8)\n\n",
              baselines::async_mh_feasible({.n = 7, .t = 2, .dim = 2}) ? "yes" : "NO");

  std::printf("Scene B: asynchronous network, n = 8 (so (D+1) ts + ta = 7 < 8 "
              "keeps the hybrid protocol feasible at ts = 2, ta = 1).\n");
  scene("",
        {
            base_spec(Protocol::kSyncLockstep, 8, 2, 0, Network::kAsyncExponential,
                      Adversary::kOutlier, 1, 4),
            base_spec(Protocol::kHybrid, 8, 2, 1, Network::kAsyncExponential,
                      Adversary::kOutlier, 1, 5),
            base_spec(Protocol::kHybrid, 8, 2, 1, Network::kAsyncReorder,
                      Adversary::kMixed, 1, 6),
        },
        {"sync baseline BREAKS", "hybrid ta=1 holds", "hybrid, hostile mix"});

  std::printf("Scene C: matched-threshold grid (t = ts = ta = 1, n = 5).\n");
  std::printf("  At ts = ta the hybrid protocol IS the asynchronous-optimal "
              "protocol ((D+2)t < n); both succeed everywhere.\n");
  scene("",
        {
            base_spec(Protocol::kAsyncMh, 5, 1, 1, Network::kSyncJitter,
                      Adversary::kSilent, 1, 7),
            base_spec(Protocol::kHybrid, 5, 1, 1, Network::kSyncJitter,
                      Adversary::kSilent, 1, 8),
            base_spec(Protocol::kAsyncMh, 5, 1, 1, Network::kAsyncReorder,
                      Adversary::kSilent, 1, 9),
            base_spec(Protocol::kHybrid, 5, 1, 1, Network::kAsyncReorder,
                      Adversary::kSilent, 1, 10),
        },
        {"", "", "", ""});

  std::printf("Paper prediction: hybrid dominates — it keeps the synchronous "
              "resilience of [32] (Scene A), survives asynchrony like [26] "
              "(Scene B/C), and the sync-only baseline breaks under "
              "asynchrony (Scene B row 1).\n");
  return 0;
}
