// T8 — Multi-instance throughput: thousands of concurrent AA instances
// multiplexed through one InstanceMux per party (src/serve/).
//
// Two measurements:
//   * sim: 1000 concurrent instances admitted at t=0 (live-peak must reach
//     the full count), reporting wall us/instance plus the deterministic
//     decision-latency p50/p99 in ticks. The sim pass runs twice and the
//     per-instance outcomes must match byte-for-byte — multiplexing may not
//     perturb the per-(spec,seed) schedule.
//   * threads: 256 instances on the real-thread transport (1 OS thread per
//     party), demonstrating the slab + routing layer is not a simulator
//     artifact.
//
// With --json PATH the measurements land in the shared hydra-bench-v1
// schema so tools/perf_gate can gate instances/sec regressions in CI.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/assert.hpp"
#include "harness/perf.hpp"
#include "harness/table.hpp"
#include "serve/engine.hpp"

using namespace hydra;

namespace {

serve::ServeSpec make_spec(const std::string& backend, std::uint32_t instances) {
  serve::ServeSpec spec;
  spec.params.n = 5;
  spec.params.ts = 1;
  spec.params.ta = 1;
  spec.params.dim = 2;
  spec.params.eps = 1e-2;
  spec.params.delta = 200;
  spec.backend = backend;
  spec.instances = instances;
  spec.interarrival = 0;  // open the floodgates: every instance live at once
  spec.seed = 7;
  spec.us_per_tick = 5.0;
  spec.timeout_ms = 120'000;
  return spec;
}

/// The sim pass must be a pure function of (spec, seed): any divergence
/// between two runs means instance multiplexing leaked state across runs.
bool outcomes_identical(const serve::ServeResult& a, const serve::ServeResult& b) {
  if (a.outcomes.size() != b.outcomes.size() || a.messages != b.messages ||
      a.bytes != b.bytes || a.end_time != b.end_time) {
    return false;
  }
  for (std::size_t k = 0; k < a.outcomes.size(); ++k) {
    const auto& x = a.outcomes[k];
    const auto& y = b.outcomes[k];
    if (x.decided != y.decided || x.pass != y.pass ||
        x.decision_latency != y.decision_latency ||
        x.max_output_iteration != y.max_output_iteration ||
        x.output_diameter != y.output_diameter || x.messages != y.messages ||
        x.bytes != y.bytes) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::consume_json_path(argc, argv);

  std::printf("== T8: multi-instance throughput (InstanceMux, n=5 per instance) "
              "==\n\n");
  harness::Table table({"backend", "instances", "live-peak", "decided", "wall ms",
                        "inst/s", "p50 ticks", "p99 ticks", "late-drop", "pass"});
  std::vector<harness::BenchMetric> metrics;
  bool ok = true;

  // -------------------------------------------------------------- sim x2
  const auto sim_spec = make_spec("sim", 1000);
  const auto sim_a = serve::run_serve(sim_spec);
  const auto sim_b = serve::run_serve(sim_spec);
  const bool deterministic = outcomes_identical(sim_a, sim_b);
  if (!deterministic) {
    std::fprintf(stderr,
                 "bench_throughput: sim outcomes differ between identical "
                 "runs — multiplexing broke per-(spec,seed) determinism\n");
  }

  const auto thr_spec = make_spec("threads", 256);
  const auto thr = serve::run_serve(thr_spec);

  struct Row {
    const serve::ServeSpec* spec;
    const serve::ServeResult* result;
  };
  for (const auto& [spec, result] : {Row{&sim_spec, &sim_a}, Row{&thr_spec, &thr}}) {
    const double wall_s = static_cast<double>(result->wall_ms) / 1000.0;
    const double rate =
        wall_s > 0.0 ? static_cast<double>(result->decided) / wall_s : 0.0;
    const Time p50 = serve::latency_percentile(*result, 50.0);
    const Time p99 = serve::latency_percentile(*result, 99.0);
    const bool pass = result->decided == spec->instances && result->all_pass &&
                      result->live_peak == spec->instances;
    ok = ok && pass;
    table.row({spec->backend, harness::fmt(std::uint64_t{spec->instances}),
               harness::fmt(std::uint64_t{result->live_peak}),
               harness::fmt(std::uint64_t{result->decided}),
               harness::fmt(std::uint64_t(result->wall_ms)), harness::fmt(rate),
               harness::fmt(std::uint64_t(p50)), harness::fmt(std::uint64_t(p99)),
               harness::fmt(result->late_dropped), harness::fmt_ok(pass)});

    const double us_per_instance =
        result->decided > 0 ? static_cast<double>(result->wall_ms) * 1000.0 /
                                  static_cast<double>(result->decided)
                            : 0.0;
    metrics.push_back({"serve." + spec->backend + ".us_per_instance",
                       "us/instance", us_per_instance, result->decided});
    if (spec->backend == "sim") {
      // Tick-denominated latencies are deterministic — ideal gate metrics.
      metrics.push_back({"serve.sim.decision_p50_ticks", "ticks",
                         static_cast<double>(p50), result->decided});
      metrics.push_back({"serve.sim.decision_p99_ticks", "ticks",
                         static_cast<double>(p99), result->decided});
    }
  }
  table.print();
  std::printf("\nsim determinism (two identical runs, %zu outcomes): %s\n",
              sim_a.outcomes.size(), deterministic ? "byte-identical" : "DIVERGED");
  std::printf("Expectation: every instance decides, live-peak equals the "
              "admitted count, and the sim pass is reproducible.\n");

  if (!json_path.empty() &&
      !harness::write_bench_json(json_path, "bench_throughput", metrics)) {
    return 1;
  }
  return ok && deterministic ? 0 : 1;
}
