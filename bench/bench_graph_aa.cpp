// T10 — Approximate agreement beyond R^D: trees and paths.
//
// The hybrid protocol's shape (exchange values, intersect hulls over
// |M| - t subsets, adopt a midpoint) is not Euclidean-specific. With the
// value domain swapped for a tree metric space (src/domain/tree.cpp) the
// same ΠAA stack runs approximate agreement on graphs: geodesic hulls
// replace convex hulls, the midpoint of the diameter pair becomes a vertex
// at floor(d/2) along the unique tree path, and the per-iteration
// contraction factor becomes 1/2 (Fuchs-Ghinea-Parsaeian-Rybicki,
// arXiv:2502.05591; Nowak-Rybicki, arXiv:1908.02743).
//
// Part A measures that contraction under adversarial pressure: every
// (domain, network, adversary) cell runs under STRICT monitors — the run
// aborts on the first validity or contraction violation — and every pair of
// consecutive honest layer diameters must satisfy d' <= ceil(d / 2), the
// exact integer bound the tree midpoint rule guarantees.
//
// Part B measures convergence depth on the 64-vertex path. The worst-case
// bound is log2 of the initial label spread (the graph analogue of the
// Euclidean log(diam/eps) estimate); in full protocol runs the Πinit
// witness exchange collapses honest estimates far faster — the same
// practice-beats-the-bound effect bench_convergence documents for R^D.
//
// `--json PATH` writes the headline numbers in the shared hydra-bench-v1
// schema. Exit status: 0 only if every run satisfied D-AA, no monitor
// recorded a violation, and every contraction step met the ceil bound.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "harness/runner.hpp"
#include "harness/stats.hpp"
#include "harness/sweep.hpp"
#include "harness/table.hpp"

using namespace hydra;
using namespace hydra::harness;

namespace {

constexpr std::uint64_t kSeedsPerCell = 5;

struct CellOutcome {
  std::size_t runs = 0;
  std::size_t passed = 0;
  std::uint64_t violations = 0;
  bool contraction_ok = true;
  double worst_ratio = 0.0;  ///< max observed d' / ceil(d/2)
  Stats rounds;
  Stats messages;
};

RunSpec make_spec(const std::string& domain, Network network,
                  Adversary adversary, std::uint64_t seed, double scale) {
  RunSpec spec;
  spec.domain = domain;
  spec.params.n = 5;
  spec.params.ts = 1;
  spec.params.ta = 1;
  spec.params.dim = 1;
  spec.params.eps = 1.0;  // 1-agreement: adjacent vertices
  spec.params.delta = 1000;
  spec.workload_scale = scale;
  spec.network = network;
  spec.adversary = adversary;
  spec.corruptions = adversary == Adversary::kNone ? 0 : 1;
  spec.seed = seed;
  spec.monitors = obs::MonitorMode::kStrict;
  return spec;
}

CellOutcome judge(const std::vector<RunResult>& results) {
  CellOutcome out;
  for (const auto& result : results) {
    ++out.runs;
    if (result.verdict.d_aa()) ++out.passed;
    out.violations += result.monitor_violations;
    out.rounds.add(result.rounds);
    out.messages.add(static_cast<double>(result.messages));
    // The exact integer contraction bound of the tree midpoint rule,
    // checked over the honest complete-layer diameters the harness
    // recorded. (The strict monitors enforce the same bound live; this
    // re-derivation keeps the bench independent of the monitor path.)
    for (std::size_t i = 1; i < result.iteration_diameters.size(); ++i) {
      const double prev = result.iteration_diameters[i - 1];
      const double next = result.iteration_diameters[i];
      const double bound = std::ceil(prev / 2.0);
      if (prev > 0.0 && bound > 0.0) {
        out.worst_ratio = std::max(out.worst_ratio, next / bound);
      }
      if (next > bound + 1e-9) out.contraction_ok = false;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = hydra::bench::consume_json_path(argc, argv);
  if (argc != 1) {
    std::fprintf(stderr, "usage: bench_graph_aa [--json PATH]\n");
    return 2;
  }

  std::printf("== T10a: graph AA contraction under adversarial pressure ==\n");
  std::printf("tree = 63-vertex complete binary tree, path = 64-vertex line; "
              "strict monitors, bound d' <= ceil(d/2) per iteration "
              "(arXiv:2502.05591)\n\n");

  const std::vector<Network> networks{
      Network::kSyncJitter, Network::kSyncWorstCase, Network::kAsyncReorder,
      Network::kAsyncExponential};
  const std::vector<Adversary> adversaries{
      Adversary::kSilent, Adversary::kEquivocator, Adversary::kOutlier,
      Adversary::kCrash};

  bool all_pass = true;
  std::uint64_t total_violations = 0;
  Stats tree_rounds;
  Stats path_rounds;
  Table table({"domain", "network", "adversary", "runs", "pass", "violations",
               "worst d'/ceil(d/2)", "mean rounds", "ok"});
  for (const std::string domain : {"tree", "path"}) {
    for (const Network network : networks) {
      for (const Adversary adversary : adversaries) {
        std::vector<RunSpec> grid;
        grid.reserve(kSeedsPerCell);
        for (std::uint64_t seed = 1; seed <= kSeedsPerCell; ++seed) {
          grid.push_back(make_spec(domain, network, adversary, seed, 10.0));
        }
        const auto outcome = judge(run_sweep(grid));
        const bool ok = outcome.passed == outcome.runs &&
                        outcome.violations == 0 && outcome.contraction_ok;
        all_pass = all_pass && ok;
        total_violations += outcome.violations;
        (domain == "tree" ? tree_rounds : path_rounds)
            .add(outcome.rounds.mean());
        table.row({domain, to_string(network), to_string(adversary),
                   fmt(std::uint64_t{outcome.runs}),
                   fmt(std::uint64_t{outcome.passed}),
                   fmt(outcome.violations), fmt(outcome.worst_ratio),
                   fmt(outcome.rounds.mean()), fmt_ok(ok)});
      }
    }
  }
  table.print();

  std::printf("\n== T10b: convergence depth on the 64-vertex path ==\n");
  std::printf("(worst case: ceil(log2(spread)) halving iterations; the Πinit "
              "witness exchange usually collapses estimates much sooner)\n\n");
  Table depth({"scale", "mean input diameter", "T estimate", "max output it",
               "mean rounds", "all 1-agree"});
  Stats depth_iters;
  for (const double scale : {4.0, 16.0, 60.0}) {
    std::vector<RunSpec> grid;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      grid.push_back(
          make_spec("path", Network::kSyncJitter, Adversary::kNone, seed, scale));
    }
    const auto results = run_sweep(grid);
    Stats diam;
    Stats est;
    std::uint32_t max_it = 0;
    Stats rounds;
    bool agree = true;
    for (const auto& result : results) {
      diam.add(result.input_diameter);
      est.add(static_cast<double>(result.min_estimate));
      max_it = std::max(max_it, result.max_output_iteration);
      rounds.add(result.rounds);
      agree = agree && result.verdict.d_aa();
      all_pass = all_pass && result.verdict.d_aa();
      total_violations += result.monitor_violations;
    }
    depth_iters.add(static_cast<double>(max_it));
    depth.row({fmt(scale), fmt(diam.mean()), fmt(est.mean()),
               fmt(std::uint64_t{max_it}), fmt(rounds.mean()), fmt_ok(agree)});
  }
  depth.print();

  std::printf("\nGraph-AA prediction (arXiv:2502.05591): at most "
              "ceil(log2(spread)) halving iterations, validity on the "
              "geodesic hull throughout; in practice the witness exchange "
              "collapses estimates within an iteration. Measured: %s, %llu "
              "violation(s).\n",
              all_pass ? "all runs passed" : "FAILURES (see tables)",
              static_cast<unsigned long long>(total_violations));

  if (!json_path.empty()) {
    const std::vector<BenchMetric> metrics = {
        {"graph_aa.tree.mean_rounds", "Delta", tree_rounds.mean(),
         static_cast<std::uint64_t>(tree_rounds.count())},
        {"graph_aa.path.mean_rounds", "Delta", path_rounds.mean(),
         static_cast<std::uint64_t>(path_rounds.count())},
        {"graph_aa.path.mean_depth_iters", "iterations", depth_iters.mean(),
         static_cast<std::uint64_t>(depth_iters.count())},
    };
    if (!harness::write_bench_json(json_path, "bench_graph_aa", metrics)) {
      return 1;
    }
  }
  return all_pass && total_violations == 0 ? 0 : 1;
}
