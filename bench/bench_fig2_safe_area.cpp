// F2 — Figure 2 reproduction: the worked safe-area computation.
//
// Figure 2 intersects the convex hulls of every 3-point subset of four
// points a, b, c, d (t = 1) and arrives at a single point v; whichever of
// the four points is Byzantine, v lies in the convex hull of the three
// honest ones. This binary replays the figure's intersection sequence with
// the exact 2-D kernel, prints each partial intersection, and verifies the
// containment claim for all four corruption choices. It then reruns the
// computation across dimensions and trim values to chart when safe areas
// are full-dimensional, degenerate, or empty (the Section 5 example).
#include <cstdio>
#include <vector>

#include "common/combinatorics.hpp"
#include "common/rng.hpp"
#include "geometry/convex.hpp"
#include "geometry/polygon.hpp"
#include "geometry/safe_area.hpp"
#include "harness/table.hpp"

using namespace hydra;
using harness::Table;

namespace {

std::string vertices_of(const geo::ConvexPolygon2D& poly) {
  if (poly.empty()) return "(empty)";
  std::string out;
  for (const auto& v : poly.vertices()) out += geo::to_string(v) + " ";
  return out;
}

void figure2_walkthrough() {
  // A quadrilateral in convex position, like the figure's a, b, c, d.
  const std::vector<geo::Vec> pts{{0.0, 0.0}, {4.0, 0.0}, {3.0, 3.0}, {0.5, 2.5}};
  const char* names[] = {"a", "b", "c", "d"};

  std::printf("points: ");
  for (int i = 0; i < 4; ++i) {
    std::printf("%s=%s ", names[i], geo::to_string(pts[i]).c_str());
  }
  std::printf("   t = 1\n\n");

  // Intersect the four 3-point hulls in the figure's order.
  geo::ConvexPolygon2D region;
  bool first = true;
  for (std::size_t removed = 0; removed < 4; ++removed) {
    std::vector<geo::Vec> kept;
    std::string label = "convex({";
    for (std::size_t j = 0; j < 4; ++j) {
      if (j == removed) continue;
      kept.push_back(pts[j]);
      label += names[j];
      label += ",";
    }
    label.back() = '}';
    label += ")";
    const auto hull = geo::ConvexPolygon2D::hull_of(kept);
    region = first ? hull : region.intersect(hull);
    first = false;
    std::printf("after intersecting %-18s : %s\n", label.c_str(),
                vertices_of(region).c_str());
  }

  const auto sa = geo::SafeArea::compute(pts, 1);
  const auto mid = sa.midpoint_rule();
  std::printf("\nsafe_1 = %s  diameter = %.3g  -> single point v, as in the "
              "figure\n",
              vertices_of(sa.polygon2d()).c_str(), sa.diameter());

  Table table({"corrupted point", "v in convex(honest 3)?"});
  for (std::size_t byz = 0; byz < 4; ++byz) {
    std::vector<geo::Vec> honest;
    for (std::size_t j = 0; j < 4; ++j) {
      if (j != byz) honest.push_back(pts[j]);
    }
    table.row({names[byz], harness::fmt_ok(mid && geo::in_convex_hull(honest, *mid,
                                                                      1e-7))});
  }
  table.print();
}

void emptiness_chart() {
  std::printf("\n== When is safe_t(M) non-empty? (Lemma 5.5 boundary) ==\n");
  std::printf("The Section 5 example: safe_1({(0,0),(0,1),(1,0)}) with |M| = "
              "n - ts = 3 is EMPTY,\nwhich is why the protocol trims "
              "max(k, ta) instead of ts.\n\n");

  const std::vector<geo::Vec> tri{{0.0, 0.0}, {0.0, 1.0}, {1.0, 0.0}};
  std::printf("safe_1({(0,0),(0,1),(1,0)}) empty: %s\n",
              harness::fmt_ok(geo::SafeArea::compute(tri, 1).empty()).c_str());
  std::printf("safe_0 of the same M (k = 0, ta = 0 trim): diameter %.4g "
              "(= the full hull)\n\n",
              geo::SafeArea::compute(tri, 0).diameter());

  // Chart: random point sets, |M| = m, trim t — non-empty iff Lemma 5.5's
  // precondition m - (D+1) t >= 1 ... m - t(D+1) >= 1 is only the Helly
  // sufficient bound; measure the empirical boundary.
  Table table({"D", "m", "t", "Helly bound says", "measured non-empty (20 seeds)"});
  Rng rng(2024);
  for (std::size_t dim = 1; dim <= 3; ++dim) {
    for (std::size_t m = 3; m <= 6; ++m) {
      for (std::size_t t = 1; t < m && t <= 2; ++t) {
        int nonempty = 0;
        for (int trial = 0; trial < 20; ++trial) {
          std::vector<geo::Vec> pts;
          for (std::size_t i = 0; i < m; ++i) {
            geo::Vec v(dim, 0.0);
            for (std::size_t d = 0; d < dim; ++d) v[d] = rng.next_double(-1.0, 1.0);
            pts.push_back(std::move(v));
          }
          if (!geo::SafeArea::compute(pts, t).empty()) ++nonempty;
        }
        const bool helly = m >= (dim + 1) * t + 1;
        table.row({harness::fmt(std::uint64_t{dim}), harness::fmt(std::uint64_t{m}),
                   harness::fmt(std::uint64_t{t}),
                   helly ? "non-empty" : "may be empty",
                   harness::fmt(std::uint64_t(nonempty)) + "/20"});
      }
    }
  }
  table.print();
}

}  // namespace

int main() {
  std::printf("== F2: Figure 2 — safe area of four points, t = 1 ==\n\n");
  figure2_walkthrough();
  emptiness_chart();
  return 0;
}
