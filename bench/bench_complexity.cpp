// T3 — Round and message complexity.
//
// The paper's timing constants: c_rBC = 3 and c'_rBC = 2 (Theorem 4.2),
// c_oBC = 5 (Theorem 4.4), c_init = 2 c_rBC + c'_rBC = 8 (Theorem 5.18),
// c_AA-it = 5 (Section 5). Under synchrony the protocol finishes by
// (c_init + (T_min + 1) * c_AA-it + c'_rBC) * Delta. This binary measures
// end-to-end rounds and traffic across n and checks them against those
// bounds; message complexity is Theta(n^3) per rBC round trip (n parallel
// Bracha instances of n^2 messages each).
#include <cstdio>
#include <vector>

#include "harness/runner.hpp"
#include "harness/table.hpp"
#include "protocols/params.hpp"

using namespace hydra;
using namespace hydra::harness;

int main() {
  using protocols::Params;
  std::printf("== T3: round and message complexity under synchrony ==\n");
  std::printf("constants: c_rBC=%d c'_rBC=%d c_oBC=%d c_init=%d c_AA-it=%d\n\n",
              Params::kCRbc, Params::kCRbcCond, Params::kCObc, Params::kCInit,
              Params::kCAaIt);

  Table table({"n", "ts", "ta", "D", "T_min", "rounds", "bound", "ok", "messages",
               "KiB", "msgs/n^3"});
  struct Case {
    std::size_t n, ts, ta, dim;
  };
  const std::vector<Case> cases{
      {4, 1, 0, 2}, {5, 1, 1, 2}, {7, 2, 0, 2}, {8, 2, 1, 2},
      {9, 2, 2, 2}, {11, 3, 1, 2}, {13, 3, 3, 2}, {6, 1, 1, 3},
  };

  bool all_ok = true;
  for (const auto& c : cases) {
    RunSpec spec;
    spec.params.n = c.n;
    spec.params.ts = c.ts;
    spec.params.ta = c.ta;
    spec.params.dim = c.dim;
    spec.params.eps = 1e-3;
    spec.params.delta = 1000;
    spec.workload = Workload::kUniformBall;
    spec.workload_scale = 10.0;
    spec.network = Network::kSyncWorstCase;
    spec.adversary = Adversary::kSilent;
    spec.corruptions = c.ts;
    spec.seed = 31 * c.n;

    const auto result = execute(spec);
    // Bound: init + (T_min + 1) iterations + halt propagation.
    const double bound = Params::kCInit +
                         static_cast<double>(result.min_estimate + 1) *
                             Params::kCAaIt +
                         Params::kCRbcCond;
    const bool ok = result.verdict.d_aa() && result.rounds <= bound + 1e-9;
    all_ok = all_ok && ok;
    const double n3 = static_cast<double>(c.n) * c.n * c.n;
    table.row({fmt(std::uint64_t{c.n}), fmt(std::uint64_t{c.ts}),
               fmt(std::uint64_t{c.ta}), fmt(std::uint64_t{c.dim}),
               fmt(result.min_estimate), fmt(result.rounds), fmt(bound), fmt_ok(ok),
               fmt(result.messages), fmt(static_cast<double>(result.bytes) / 1024.0),
               fmt(static_cast<double>(result.messages) / n3)});
  }
  table.print();

  std::printf("\nPaper prediction: rounds <= c_init + (T_min + 1) c_AA-it + "
              "c'_rBC; messages = Theta(n^3) per round-trip (flat msgs/n^3 "
              "column). Measured: %s.\n",
              all_ok ? "all bounds hold" : "BOUND VIOLATION (see table)");
  return all_ok ? 0 : 1;
}
