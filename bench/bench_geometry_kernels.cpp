// T6 — Geometry kernel performance and the D >= 3 sampling ablation.
//
// Part 1 (printed table): DESIGN.md decision 3 trades exactness for
// generality above D = 3 — the diameter pair of the safe area is computed
// from direction-sampled support points (D = 3 itself has an exact
// facet-enumeration kernel since hull3d landed). This ablation measures the
// sampled kernel against the exact one on D = 3 instances: relative diameter
// error and midpoint shift as the direction budget grows, plus the effective
// per-iteration contraction in a real D = 3 protocol run per budget.
//
// Part 2 (google-benchmark): microbenchmarks of the hot kernels — 2-D hull,
// polygon intersection, safe areas across (m, t, D), simplex LP membership.
//
// `--json PATH` switches to CI mode: the shared per-kernel ns/point
// measurement (harness::measure_geometry_kernels — the same workload `hydra
// perf` runs), written as hydra-bench-v1 JSON and gated against
// bench/baselines/BENCH_geometry.json by tools/perf_gate. The ablation and
// the google-benchmark suite are skipped in that mode.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "common/rng.hpp"
#include "geometry/convex.hpp"
#include "geometry/polygon.hpp"
#include "geometry/safe_area.hpp"
#include "harness/runner.hpp"
#include "harness/table.hpp"

using namespace hydra;

namespace {

std::vector<geo::Vec> random_points(Rng& rng, std::size_t count, std::size_t dim,
                                    double radius = 10.0) {
  std::vector<geo::Vec> pts;
  for (std::size_t i = 0; i < count; ++i) {
    geo::Vec v(dim, 0.0);
    for (std::size_t d = 0; d < dim; ++d) v[d] = rng.next_double(-radius, radius);
    pts.push_back(std::move(v));
  }
  return pts;
}

void direction_ablation() {
  std::printf("== T6a: D = 3 support-direction ablation (reference: the EXACT "
              "facet-enumeration kernel) ==\n\n");
  harness::Table table({"directions", "rel diameter err (max/20)",
                        "midpoint shift (max/20)", "contraction in live run"});

  // Geometry accuracy of the direction-sampled kernel against the exact
  // vertex enumeration on random D = 3 safe areas. The sampled kernel is
  // what D >= 4 (and oversized D = 3 instances) actually run.
  for (const std::size_t dirs : {8u, 16u, 32u, 64u, 128u}) {
    Rng rng(99);
    double max_diam_err = 0.0;
    double max_mid_shift = 0.0;
    for (int trial = 0; trial < 20; ++trial) {
      const auto pts = random_points(rng, 6, 3);
      const auto ref = geo::SafeArea::compute(pts, 1);
      if (!ref.exact()) continue;  // degenerate draw; skip
      // Recreate the sampled result directly from support points.
      std::vector<std::vector<geo::Vec>> hulls;
      for (std::size_t drop = 0; drop < pts.size(); ++drop) {
        std::vector<geo::Vec> h;
        for (std::size_t i = 0; i < pts.size(); ++i) {
          if (i != drop) h.push_back(pts[i]);
        }
        hulls.push_back(std::move(h));
      }
      Rng dir_rng(0x5afea4ea);
      std::vector<geo::Vec> support;
      for (std::size_t k = 0; k < dirs; ++k) {
        geo::Vec u{dir_rng.next_gaussian(), dir_rng.next_gaussian(),
                   dir_rng.next_gaussian()};
        const double len = geo::norm(u);
        if (len < 1e-9) continue;
        u *= 1.0 / len;
        if (const auto s = geo::support_point(hulls, u)) support.push_back(*s);
      }
      if (ref.empty() || support.empty()) continue;
      const double ref_diam = ref.diameter();
      if (ref_diam < 1e-9) continue;
      const auto pair = geo::max_distance_pair(support);
      const double sampled_diam = geo::distance(pair->first, pair->second);
      max_diam_err =
          std::max(max_diam_err, std::abs(sampled_diam - ref_diam) / ref_diam);
      const auto ref_mid = ref.midpoint_rule();
      const geo::Vec mid = geo::midpoint(pair->first, pair->second);
      max_mid_shift =
          std::max(max_mid_shift, geo::distance(*ref_mid, mid) / ref_diam);
    }

    // Effective contraction in a real D = 3 protocol run with this budget.
    harness::RunSpec spec;
    spec.params.n = 6;
    spec.params.ts = 1;
    spec.params.ta = 1;
    spec.params.dim = 3;
    spec.params.eps = 1e-1;
    spec.params.delta = 1000;
    spec.params.safe_opts.support_directions = dirs;
    spec.workload = harness::Workload::kUniformBall;
    spec.workload_scale = 20.0;
    spec.network = harness::Network::kAsyncReorder;
    spec.seed = 5;
    const auto result = harness::execute(spec);
    double worst_ratio = 0.0;
    for (std::size_t i = 1; i < result.iteration_diameters.size(); ++i) {
      if (result.iteration_diameters[i - 1] > 1e-7) {
        worst_ratio = std::max(worst_ratio, result.iteration_diameters[i] /
                                                result.iteration_diameters[i - 1]);
      }
    }
    table.row({harness::fmt(std::uint64_t{dirs}), harness::fmt(max_diam_err),
               harness::fmt(max_mid_shift), harness::fmt(worst_ratio)});
  }
  table.print();
  std::printf("\nDiameter is only ever UNDER-estimated by sampling, so the "
              "midpoint stays in the safe area (validity unaffected); the "
              "contraction factor degrades gracefully at tiny budgets.\n\n");
}

// ------------------------------------------------- google-benchmark part

void BM_Hull2D(benchmark::State& state) {
  Rng rng(1);
  const auto pts = random_points(rng, static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::ConvexPolygon2D::hull_of(pts));
  }
}
BENCHMARK(BM_Hull2D)->Arg(8)->Arg(16)->Arg(64);

void BM_PolygonIntersect(benchmark::State& state) {
  Rng rng(2);
  const auto a = geo::ConvexPolygon2D::hull_of(
      random_points(rng, static_cast<std::size_t>(state.range(0)), 2));
  const auto b = geo::ConvexPolygon2D::hull_of(
      random_points(rng, static_cast<std::size_t>(state.range(0)), 2, 8.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.intersect(b));
  }
}
BENCHMARK(BM_PolygonIntersect)->Arg(8)->Arg(16);

void BM_SafeArea1D(benchmark::State& state) {
  Rng rng(3);
  const auto pts = random_points(rng, static_cast<std::size_t>(state.range(0)), 1);
  const auto t = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::SafeArea::compute(pts, t));
  }
}
BENCHMARK(BM_SafeArea1D)->Args({8, 2})->Args({16, 5})->Args({32, 10});

void BM_SafeArea2D(benchmark::State& state) {
  Rng rng(4);
  const auto pts = random_points(rng, static_cast<std::size_t>(state.range(0)), 2);
  const auto t = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::SafeArea::compute(pts, t));
  }
}
BENCHMARK(BM_SafeArea2D)->Args({6, 1})->Args({8, 2})->Args({12, 3})->Args({16, 2});

void BM_SafeArea3DSampled(benchmark::State& state) {
  Rng rng(5);
  const auto pts = random_points(rng, static_cast<std::size_t>(state.range(0)), 3);
  geo::SafeAreaOptions opts;
  opts.support_directions = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::SafeArea::compute(pts, 1, opts));
  }
}
BENCHMARK(BM_SafeArea3DSampled)->Args({6, 16})->Args({6, 64})->Args({8, 64});

void BM_PointInHullLP(benchmark::State& state) {
  Rng rng(6);
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto pts = random_points(rng, 2 * dim + 4, dim);
  const geo::Vec q(dim, 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::in_convex_hull(pts, q));
  }
}
BENCHMARK(BM_PointInHullLP)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = hydra::bench::consume_json_path(argc, argv);
  if (!json_path.empty()) {
    const auto metrics = harness::measure_geometry_kernels();
    harness::Table table({"kernel", "unit", "value", "repetitions"});
    for (const auto& m : metrics) {
      table.row({m.name, m.unit, harness::fmt(m.value),
                 harness::fmt(m.repetitions)});
    }
    table.print();
    return harness::write_bench_json(json_path, "geometry", metrics) ? 0 : 1;
  }
  direction_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
