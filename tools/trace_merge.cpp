// trace_merge — stitch per-process hydra traces into one causally ordered
// timeline (obs/merge.hpp; docs/OBSERVABILITY.md "Distributed runs").
//
//   trace_merge [--out PATH] [--check] TRACE.jsonl...
//
// Each `hydra serve`/`join` process writes a trace covering its local
// parties; this tool merges them (argument order is irrelevant — the output
// is a pure function of the file contents), re-evaluates the GLOBAL
// invariant monitors when every process completed, and writes the merged
// JSONL to --out (default: stdout). A summary goes to stderr so it never
// mixes with piped output.
//
// Exit status: 0 on a clean merge; 1 with --check when the merged timeline
// carries violations or orphan delivers (a deliver whose cause send never
// appeared — expected when a process was killed, suspicious otherwise);
// 2 on merge failure (unreadable file, mismatched run ids, ...).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/merge.hpp"

int main(int argc, char** argv) {
  std::string out_path;
  bool check = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr,
                   "usage: trace_merge [--out PATH] [--check] TRACE.jsonl...\n");
      return 2;
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr,
                 "usage: trace_merge [--out PATH] [--check] TRACE.jsonl...\n");
    return 2;
  }

  const auto result = hydra::obs::merge_traces(paths);
  if (!result.ok()) {
    std::fprintf(stderr, "trace_merge: %s\n", result.error.c_str());
    return 2;
  }

  if (out_path.empty()) {
    std::cout << result.merged;
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "trace_merge: cannot write %s\n", out_path.c_str());
      return 2;
    }
    out << result.merged;
  }

  std::fprintf(stderr,
               "trace_merge: %zu file(s), %zu event(s), %zu orphan(s), %zu "
               "skipped line(s), %s, %llu violation(s)\n",
               result.files, result.events, result.orphans, result.skipped_lines,
               result.reevaluated
                   ? "complete (global monitors re-evaluated)"
                   : (result.complete ? "complete" : "incomplete"),
               static_cast<unsigned long long>(result.violations));
  if (check && (result.violations > 0 || result.orphans > 0)) return 1;
  return 0;
}
