// trace_report — JSONL trace (+ optional metrics JSON) to a human-readable
// run report; the standalone twin of `hydra report`.
//
//   trace_report IN.jsonl [--metrics RUN.json] [--out OUT.md] [--format md|html]
//
// Output defaults to stdout. The rendering lives in obs/report.hpp so tests
// can cover it.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/report.hpp"

int main(int argc, char** argv) {
  std::string in_path;
  std::string metrics_path;
  std::string out_path;
  hydra::obs::ReportOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "trace_report: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--metrics") {
      metrics_path = value();
    } else if (arg == "--out") {
      out_path = value();
    } else if (arg == "--format") {
      const std::string format = value();
      if (format == "html") {
        options.format = hydra::obs::ReportOptions::Format::kHtml;
      } else if (format != "md") {
        std::fprintf(stderr, "trace_report: unknown format %s\n", format.c_str());
        return 2;
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "usage: trace_report IN.jsonl [--metrics RUN.json] "
                   "[--out OUT] [--format md|html]\n");
      return 2;
    } else {
      in_path = arg;
    }
  }
  if (in_path.empty()) {
    std::fprintf(stderr,
                 "usage: trace_report IN.jsonl [--metrics RUN.json] "
                 "[--out OUT] [--format md|html]\n");
    return 2;
  }

  std::ifstream in(in_path);
  if (!in) {
    std::fprintf(stderr, "trace_report: cannot read %s\n", in_path.c_str());
    return 1;
  }
  std::string metrics;
  if (!metrics_path.empty()) {
    std::ifstream m(metrics_path);
    if (!m) {
      std::fprintf(stderr, "trace_report: cannot read %s\n", metrics_path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << m.rdbuf();
    metrics = buffer.str();
  }

  std::size_t events = 0;
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "trace_report: cannot write %s\n", out_path.c_str());
      return 1;
    }
    events = hydra::obs::render_report(in, metrics, options, out);
    std::printf("%zu events -> %s\n", events, out_path.c_str());
  } else {
    events = hydra::obs::render_report(in, metrics, options, std::cout);
  }
  return events > 0 ? 0 : 1;
}
