#!/usr/bin/env bash
# Fault x adversary strict sweep matrix (docs/ROBUSTNESS.md).
#
# Runs `hydra sweep --monitors=strict` over every (protocol, network,
# adversary, fault-plan) cell below — 48 cells, --seeds runs each — and
# fails if ANY run misses D-AA or trips an invariant monitor (the sweep
# exit-code contract makes each cell self-checking). CI runs this as the
# fault-matrix job; locally:
#
#   ./tools/fault_matrix.sh [path-to-hydra] [seeds] [backend] [filter]
#
# backend selects the execution backend (sim default; threads runs the same
# cells on the wall-clock transport, tcp/uds on the socket transport with
# every non-self message crossing the OS). filter is a substring match on
# "protocol/network/adversary" so CI can run an affordable slice, e.g.:
#
#   ./tools/fault_matrix.sh ./build/tools/hydra 2 threads hybrid/sync-jitter
#   ./tools/fault_matrix.sh ./build/tools/hydra 2 tcp hybrid/sync-jitter
set -u

HYDRA="${1:-./build/tools/hydra}"
SEEDS="${2:-2}"
BACKEND="${3:-sim}"
FILTER="${4:-}"

if [[ ! -x "$HYDRA" ]]; then
  echo "error: hydra binary not found at $HYDRA (build first)" >&2
  exit 2
fi

DUP='dup(p=0.3)'
REORDER='reorder(p=0.5)'
CHAOS='dup(p=0.3);reorder(p=0.5)'
CRASH='crash(party=4,at=0)'
CRASH_RECOVER='crash(party=4,at=2000,until=9000)'
PARTITION='partition(group=0.1,from=2000,until=8000)'

cells=0
failed=0

run_cell() {
  local protocol="$1" network="$2" adversary="$3" faults="$4"
  if [[ -n "$FILTER" && "$protocol/$network/$adversary" != *"$FILTER"* ]]; then
    return
  fi
  local corrupt=0
  [[ "$adversary" != "none" ]] && corrupt=1
  cells=$((cells + 1))
  if ! "$HYDRA" sweep --protocol="$protocol" --network="$network" \
      --adversary="$adversary" --corrupt="$corrupt" \
      --n=5 --ts=1 --ta=1 --dim=2 --seeds="$SEEDS" \
      --backend="$BACKEND" \
      --monitors=strict --faults="$faults" >/dev/null; then
    failed=$((failed + 1))
    echo "FAIL: $protocol/$network/$adversary faults='$faults' backend=$BACKEND" >&2
  fi
}

# Hybrid under synchrony: dup/reorder/chaos must be invisible to the verdict
# (the injector clamps skew to Delta), with and without a Byzantine slot.
for network in sync-jitter sync-worst; do
  for adversary in none silent; do
    for faults in "$DUP" "$REORDER" "$CHAOS"; do
      run_cell hybrid "$network" "$adversary" "$faults"
    done
  done
done

# Hybrid under asynchrony: add the partition plan (legal only here — an open
# partition is an asynchrony violation by construction).
for network in async-reorder async-exp; do
  for adversary in none silent; do
    for faults in "$DUP" "$CHAOS" "$PARTITION"; do
      run_cell hybrid "$network" "$adversary" "$faults"
    done
  done
done

# Async-MH baseline: the asynchronous-only protocol under the same chaos.
for network in async-reorder async-exp; do
  for adversary in none silent; do
    for faults in "$DUP" "$CHAOS" "$PARTITION"; do
      run_cell async-mh "$network" "$adversary" "$faults"
    done
  done
done

# Sync-lockstep baseline: synchronous networks only.
for network in sync-jitter sync-worst; do
  for faults in "$DUP" "$REORDER" "$CHAOS"; do
    run_cell sync-lockstep "$network" none "$faults"
  done
done

# Crash-fault cells (adversary none so the combined faulty count stays
# within ts = 1): crash-stop and crash-recover across both worlds.
for network in sync-jitter sync-worst async-reorder; do
  run_cell hybrid "$network" none "$CRASH"
done
run_cell hybrid sync-jitter none "$CRASH_RECOVER"
run_cell async-mh async-reorder none "$CRASH"
run_cell sync-lockstep sync-jitter none "$CRASH"

echo
echo "fault matrix: $cells cells x $SEEDS seeds (backend=$BACKEND), $failed failing"
if [[ "$cells" -eq 0 ]]; then
  echo "error: filter '$FILTER' matched no cells" >&2
  exit 2
fi
[[ "$failed" -eq 0 ]]
