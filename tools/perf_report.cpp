// perf_report — render performance artifacts without re-measuring anything.
//
//   perf_report --input PATH [--top K]
//       render a hydra-perf-v1 phase profile (from `hydra run --perf-json`)
//       as the self/total attribution table
//   perf_report --current PATH --baseline PATH [--budget FRAC]
//       render the per-metric delta table between two hydra-bench-v1
//       documents (exit 1 past the budget, default 0.10)
//
// The measuring counterparts live in `hydra perf` (kernels) and the bench
// binaries' --json mode; this tool only reads their files, so CI can render
// reports from uploaded artifacts.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "harness/perf.hpp"

using namespace hydra::harness;

namespace {

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n", error);
  std::fprintf(stderr,
               "usage: perf_report --input PERF_JSON [--top K]\n"
               "       perf_report --current BENCH_JSON --baseline BENCH_JSON"
               " [--budget FRAC]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> kv;
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) usage("malformed options");
    key = key.substr(2);
    if (const auto eq = key.find('='); eq != std::string::npos) {
      kv[key.substr(0, eq)] = key.substr(eq + 1);
    } else {
      if (i + 1 >= argc) usage("malformed options");
      kv[key] = argv[++i];
    }
  }

  if (const auto it = kv.find("input"); it != kv.end()) {
    const auto rows = load_perf_json(it->second);
    if (!rows) {
      std::fprintf(stderr, "error: %s is not a hydra-perf-v1 document\n",
                   it->second.c_str());
      return 1;
    }
    std::size_t top = 0;
    if (const auto t = kv.find("top"); t != kv.end()) {
      top = static_cast<std::size_t>(std::strtoull(t->second.c_str(), nullptr, 10));
    }
    std::fputs(render_phase_report(*rows, top).c_str(), stdout);
    return 0;
  }

  const auto cur_it = kv.find("current");
  const auto base_it = kv.find("baseline");
  if (cur_it == kv.end() || base_it == kv.end()) {
    usage("need --input, or --current and --baseline");
  }
  const auto current = load_bench_json(cur_it->second);
  const auto baseline = load_bench_json(base_it->second);
  if (!current || !baseline) {
    std::fprintf(stderr, "error: inputs must be hydra-bench-v1 documents\n");
    return 1;
  }
  double budget = 0.10;
  if (const auto b = kv.find("budget"); b != kv.end()) {
    budget = std::strtod(b->second.c_str(), nullptr);
  }
  std::vector<std::string> regressions;
  std::printf("%s vs %s (budget %+.0f%%):\n", cur_it->second.c_str(),
              base_it->second.c_str(), 100.0 * budget);
  std::fputs(
      render_delta_table(current->metrics, baseline->metrics, budget, &regressions)
          .c_str(),
      stdout);
  if (!regressions.empty()) {
    std::printf("\nREGRESSION:");
    for (const auto& name : regressions) std::printf(" %s", name.c_str());
    std::printf("\n");
    return 1;
  }
  return 0;
}
