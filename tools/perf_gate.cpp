// perf_gate — the CI regression gate over hydra-bench-v1 documents.
//
//   perf_gate --current PATH --baseline PATH [--budget FRAC] [--inflate F]
//
// Exit 0 when every baseline metric is present in --current and within
// budget (current <= baseline * (1 + budget); all units are
// lower-is-better), 1 on any regression or missing metric, 2 on unreadable
// inputs. --budget defaults to 0.10.
//
// --inflate F multiplies every current value by F before comparing. CI runs
// the gate twice: once for real, and once with --inflate 1.25 against the
// SAME file — which must exit 1, proving the gate actually trips on a >10%
// regression (a gate that cannot fail is worse than no gate).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/perf.hpp"

using namespace hydra::harness;

int main(int argc, char** argv) {
  std::string current_path;
  std::string baseline_path;
  double budget = 0.10;
  double inflate = 1.0;
  for (int i = 1; i < argc; ++i) {
    const auto arg = [&](const char* name) -> const char* {
      if (std::strcmp(argv[i], name) != 0) return nullptr;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", name);
        std::exit(2);
      }
      return argv[++i];
    };
    if (const char* v = arg("--current")) {
      current_path = v;
    } else if (const char* v = arg("--baseline")) {
      baseline_path = v;
    } else if (const char* v = arg("--budget")) {
      budget = std::strtod(v, nullptr);
    } else if (const char* v = arg("--inflate")) {
      inflate = std::strtod(v, nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: perf_gate --current PATH --baseline PATH"
                   " [--budget FRAC] [--inflate F]\n");
      return 2;
    }
  }
  if (current_path.empty() || baseline_path.empty()) {
    std::fprintf(stderr, "error: --current and --baseline are required\n");
    return 2;
  }

  auto current = load_bench_json(current_path);
  const auto baseline = load_bench_json(baseline_path);
  if (!current || !baseline) {
    std::fprintf(stderr, "error: inputs must be hydra-bench-v1 documents\n");
    return 2;
  }
  if (inflate != 1.0) {
    for (auto& m : current->metrics) m.value *= inflate;
    std::printf("(self-test: current values inflated by %.2fx)\n", inflate);
  }

  std::vector<std::string> regressions;
  std::printf("perf gate: %s vs %s (budget %+.0f%%)\n", current_path.c_str(),
              baseline_path.c_str(), 100.0 * budget);
  std::fputs(
      render_delta_table(current->metrics, baseline->metrics, budget, &regressions)
          .c_str(),
      stdout);
  if (!regressions.empty()) {
    std::printf("\nFAIL:");
    for (const auto& name : regressions) std::printf(" %s", name.c_str());
    std::printf("\n");
    return 1;
  }
  std::printf("\nOK: all metrics within budget\n");
  return 0;
}
