// hydra — command-line driver for single runs and seed sweeps.
//
//   hydra run    [options]    execute one run, print the verdict and metrics
//   hydra sweep  [options]    execute --seeds runs (in parallel), print the
//                             pass rate
//   hydra serve  [options]    host a subset of parties over real sockets and
//                             wait for the peers (multi-process deployment;
//                             docs/DEPLOYMENT.md)
//   hydra join   [options]    alias of serve (same handshake; "serve" reads
//                             naturally for the first process, "join" for
//                             the rest)
//   hydra report [options]    render a trace (+ metrics) into a readable
//                             report (markdown or single-file HTML); with
//                             --merge, stitch per-process traces first
//   hydra perf   [options]    measure the geometry kernels (ns/point) or
//                             render --perf-json phase profiles (glob/comma
//                             lists are merged into one attribution table)
//   hydra top    [options]    render the latest hydra-stats-v1 heartbeats of
//                             a live (or finished) run's --stats-json file
//   hydra list                print the accepted option values
//
// Options (with defaults):
//   --n 5 --ts 1 --ta 1 --dim 2 --eps 1e-2 --delta 1000
//   --protocol hybrid|sync-lockstep|async-mh
//   --network sync-worst|sync-jitter|sync-target|sync-rush|
//             async-reorder|async-partition|async-exp
//   --adversary none|silent|crash|equivocate|outlier|halt-rush|spam|
//               straggler|turncoat|mixed
//   --corrupt 1 --workload ball|simplex|clustered|collinear|gaussian
//   --scale 10 --seed 1 --seeds 20 --aggregation midpoint|centroid
//
// Value domain (src/domain/; docs/ARCHITECTURE.md "The domain layer"):
//   --domain euclid|tree|path
//                         euclid (default) is the paper's R^D. tree/path run
//                         approximate agreement over the vertices of a fixed
//                         graph (values are integer vertex labels, the safe
//                         area is an intersection of geodesic hulls). Graph
//                         domains run the hybrid protocol only, force
//                         --dim 1, and need --eps >= 1 (1-agreement =
//                         adjacent vertices)
//
// Execution backend (src/net/; docs/ARCHITECTURE.md):
//   --backend sim|threads|tcp|uds
//                         sim (default) is the deterministic discrete-event
//                         simulator; threads runs one OS thread per party
//                         under wall-clock time; tcp/uds run the socket
//                         transport, every non-self message crossing the OS
//                         as a length-prefixed frame (full mesh over
//                         loopback/tmpdir when single-process). All through
//                         the same delivery pipeline (verdicts judged
//                         identically)
//
// hydra serve/join options (docs/DEPLOYMENT.md):
//   --party I[,J...]      the parties THIS process hosts (required)
//   --peers A0,...,A(n-1) every party's endpoint, in PartyId order
//                         (required; "host:port" for tcp, socket paths for
//                         uds); n is taken from this list
//   --listen ADDR         overrides this process's own entry in --peers
//                         (single --party only), e.g. to bind 0.0.0.0
//   plus any run option; --backend defaults to tcp here. Every process must
//   be started with the same spec (n, ts, ta, dim, seed, protocol, ...) —
//   inputs are a pure function of it. Exit status judges the LOCAL parties.
//   SIGTERM/SIGINT flush every registered trace/stats sink before exiting
//   (status 130), so a killed process leaves mergeable JSONL behind.
//
// Live telemetry (docs/OBSERVABILITY.md "Live telemetry"):
//   --stats-json PATH     hydra-stats-v1 JSONL heartbeats (wall clock; NOT
//                         byte-deterministic, unlike the trace)
//   --stats-interval MS   heartbeat period (default 1000)
//
// Fault injection (docs/ROBUSTNESS.md):
//   --faults SPEC         semicolon-separated clauses, e.g.
//                         "dup(p=0.2);reorder(p=0.5,skew=2000);
//                          crash(party=0,at=5000[,until=20000]);
//                          partition(group=0.1,from=2000,until=9000)"
//
// Sweep parallelism (docs/OBSERVABILITY.md "Parallel sweeps"):
//   --jobs N              worker threads for sweep mode (0 = one per
//                         hardware thread, the default); every run executes
//                         in an isolated context, so results and per-seed
//                         output files are identical for any --jobs value
//   --sweep-json PATH     merged sweep summary (per-cell aggregates +
//                         failure list)
//
// Observability (docs/OBSERVABILITY.md); both --key value and --key=value
// spellings are accepted:
//   --trace-out PATH      structured JSONL trace of the run
//   --metrics-json PATH   metrics snapshot (per-round counts, registry dump)
//   --log-level LEVEL     off|error|info|debug|trace (default error, so a
//                         failing --trace-out/--metrics-json path is reported)
//   --monitors MODE       off|record|strict — online invariant monitors
//                         (docs/OBSERVABILITY.md "Invariant monitors");
//                         strict aborts the run on the first violation
//   --perf-json PATH      hydra-perf-v1 phase profile of the run (scoped
//                         profiler; docs/OBSERVABILITY.md "Phase profiler").
//                         Wall-clock ns — NOT byte-deterministic, unlike the
//                         trace/metrics files (phase counts are)
// In sweep mode each seed writes PATH with a ".s<seed>" suffix before the
// extension, so no seed overwrites another.
//
// hydra report options:
//   --trace PATH          the JSONL trace to analyse (this or --merge)
//   --merge GLOB          stitch per-process traces (glob and/or comma list,
//                         e.g. 'trace.p*.jsonl') into one causally ordered
//                         timeline, re-evaluate the GLOBAL monitors when
//                         every process completed, and report THAT
//                         (docs/OBSERVABILITY.md "Distributed runs"); exits
//                         1 on merge errors or violations
//   --merged-out PATH     also write the stitched JSONL (only with --merge)
//   --metrics PATH        the run's --metrics-json document (optional)
//   --out PATH            output file (default: stdout)
//   --format md|html      report format (default md)
//
// hydra perf options (docs/OBSERVABILITY.md "Measuring performance"):
//   (no --input)          measure the geometry kernels on fixed inputs and
//                         print ns/point per kernel
//   --json PATH           also write the measurements as hydra-bench-v1 JSON
//   --baseline PATH       compare against a checked-in bench JSON (e.g.
//                         bench/baselines/BENCH_geometry.json); prints the
//                         delta table and exits 1 past --budget
//   --budget FRAC         relative regression budget (default 0.10)
//   --input PATHS         instead: render --perf-json phase profiles as a
//                         self/total attribution table. Accepts a glob
//                         and/or comma list ('perf.p*.json'); multiple files
//                         merge into one table (counts/totals summed, min of
//                         mins, max of maxes, log2 buckets added)
//   --top K               show only the top K phases by self time
//
// hydra top options:
//   --input PATH          a --stats-json heartbeat file (required); renders
//                         the newest heartbeat per process plus per-party
//                         progress — run it while the processes are still up
//                         (or after; the final:1 line persists)
//
// Exit status: 0 when every executed run satisfied D-AA *and* no invariant
// monitor recorded a violation, 1 otherwise — usable directly in scripts
// and CI (sweeps with a non-empty failure list or any monitor violation
// exit 1).
#include <glob.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "domain/domain.hpp"
#include "faults/faults.hpp"
#include "harness/perf.hpp"
#include "harness/runner.hpp"
#include "harness/stats.hpp"
#include "harness/sweep.hpp"
#include "harness/table.hpp"
#include "obs/flatjson.hpp"
#include "obs/merge.hpp"
#include "obs/monitor.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "serve/engine.hpp"
#include "transport/socket_net.hpp"

using namespace hydra;
using namespace hydra::harness;

namespace {

struct Options {
  RunSpec spec;
  std::uint64_t seeds = 20;
  std::size_t jobs = 0;  ///< sweep workers; 0 = hardware concurrency
  std::string sweep_json;
  // serve/join (socket deployment) options.
  std::vector<PartyId> local_parties;   ///< --party
  std::vector<std::string> peers;       ///< --peers, one endpoint per party
  std::string listen;                   ///< --listen override for own entry
  bool n_given = false;
  bool backend_given = false;
  // bench serve (multi-instance throughput) options.
  std::uint32_t instances = 256;        ///< --instances
  Time interarrival = 0;                ///< --interarrival, ticks
  Duration linger = -1;                 ///< --linger, ticks (-1 = default)
  std::string bench_json;               ///< --json (hydra-bench-v1 out)
};

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: hydra <run|sweep|serve|join|bench|report|perf|top|list> [--key value | --key=value ...]\n"
               "keys: n ts ta dim eps delta protocol network adversary corrupt\n"
               "      workload scale seed seeds aggregation jobs sweep-json\n"
               "      trace-out metrics-json perf-json log-level monitors faults backend\n"
               "      stats-json stats-interval domain\n"
               "serve/join keys: party peers listen (docs/DEPLOYMENT.md)\n"
               "bench serve keys: instances interarrival linger json (+ run keys)\n"
               "report keys: trace merge merged-out metrics out format title\n"
               "perf keys: json baseline budget input top\n"
               "top keys: input\n"
               "run `hydra list` for accepted values.\n");
  std::exit(2);
}

void list_values() {
  std::printf("protocol   : hybrid sync-lockstep async-mh\n");
  std::printf("network    : sync-worst sync-jitter sync-target sync-rush "
              "async-reorder async-partition async-exp\n");
  std::printf("adversary  : none silent crash equivocate outlier halt-rush "
              "spam straggler turncoat mixed\n");
  std::printf("workload   : ball simplex clustered collinear gaussian\n");
  std::printf("aggregation: midpoint centroid\n");
  std::printf("log-level  : off error info debug trace\n");
  std::printf("monitors   : off record strict\n");
  std::printf("faults     : dup(p=P[,skew=T][,from=I][,to=I]) "
              "reorder(p=P[,skew=T][,from=I][,to=I]) "
              "crash(party=I,at=T[,until=T]) "
              "partition(group=I.J...,from=T,until=T), ';'-separated\n");
  std::string backends;
  for (const auto& name : backend_names()) {
    if (!backends.empty()) backends += ' ';
    backends += name;
  }
  std::printf("backend    : %s\n", backends.c_str());
  std::string domains;
  for (const auto& name : hydra::domain::names()) {
    if (!domains.empty()) domains += ' ';
    domains += name;
  }
  std::printf("domain     : %s\n", domains.c_str());
  std::printf("format     : md html (hydra report)\n");
}

Options parse(int argc, char** argv) {
  // The library default is kOff; the CLI surfaces errors unless silenced,
  // so e.g. an unwritable --trace-out path never fails without a message.
  set_log_level(LogLevel::kError);
  Options opts;
  auto& spec = opts.spec;
  spec.params.n = 5;
  spec.params.ts = 1;
  spec.params.ta = 1;
  spec.params.dim = 2;
  spec.params.eps = 1e-2;
  spec.params.delta = 1000;
  spec.network = Network::kSyncJitter;
  spec.adversary = Adversary::kSilent;
  spec.corruptions = 1;
  spec.workload = Workload::kUniformBall;
  spec.workload_scale = 10.0;
  spec.seed = 1;

  std::map<std::string, std::string> kv;
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) usage("malformed options");
    key = key.substr(2);
    // --key=value and --key value are both accepted.
    if (const auto eq = key.find('='); eq != std::string::npos) {
      kv[key.substr(0, eq)] = key.substr(eq + 1);
    } else {
      if (i + 1 >= argc) usage("malformed options");
      kv[key] = argv[++i];
    }
  }

  const auto num = [&](const char* key, auto fallback) {
    const auto it = kv.find(key);
    if (it == kv.end()) return fallback;
    return static_cast<decltype(fallback)>(std::strtod(it->second.c_str(), nullptr));
  };
  opts.n_given = kv.count("n") > 0;
  opts.backend_given = kv.count("backend") > 0;
  spec.params.n = num("n", spec.params.n);
  spec.params.ts = num("ts", spec.params.ts);
  spec.params.ta = num("ta", spec.params.ta);
  spec.params.dim = num("dim", spec.params.dim);
  spec.params.eps = num("eps", spec.params.eps);
  spec.params.delta = num("delta", spec.params.delta);
  spec.corruptions = num("corrupt", spec.corruptions);
  spec.workload_scale = num("scale", spec.workload_scale);
  spec.seed = num("seed", spec.seed);
  opts.seeds = num("seeds", opts.seeds);
  opts.jobs = num("jobs", opts.jobs);
  opts.instances = num("instances", opts.instances);
  opts.interarrival = num("interarrival", opts.interarrival);
  opts.linger = num("linger", opts.linger);
  if (const auto it = kv.find("json"); it != kv.end()) opts.bench_json = it->second;

  if (const auto it = kv.find("protocol"); it != kv.end()) {
    const auto p = parse_protocol(it->second);
    if (!p) {
      // Actionable: name the rejected value AND every value that would work
      // (mirrors the backend/domain registry errors below).
      const std::string msg = "unknown protocol \"" + it->second +
                              "\"; registered protocols: hybrid sync-lockstep async-mh";
      usage(msg.c_str());
    }
    spec.protocol = *p;
  }
  if (const auto it = kv.find("network"); it != kv.end()) {
    const auto n = parse_network(it->second);
    if (!n) usage("unknown network");
    spec.network = *n;
  }
  if (const auto it = kv.find("adversary"); it != kv.end()) {
    const auto a = parse_adversary(it->second);
    if (!a) usage("unknown adversary");
    spec.adversary = *a;
  }
  if (const auto it = kv.find("workload"); it != kv.end()) {
    const auto w = parse_workload(it->second);
    if (!w) usage("unknown workload");
    spec.workload = *w;
  }
  if (const auto it = kv.find("trace-out"); it != kv.end()) spec.trace_out = it->second;
  if (const auto it = kv.find("metrics-json"); it != kv.end()) {
    spec.metrics_out = it->second;
  }
  if (const auto it = kv.find("perf-json"); it != kv.end()) {
    spec.perf_out = it->second;
  }
  if (const auto it = kv.find("stats-json"); it != kv.end()) {
    spec.stats_out = it->second;
  }
  if (const auto it = kv.find("stats-interval"); it != kv.end()) {
    spec.stats_interval_ms = std::strtoll(it->second.c_str(), nullptr, 10);
    if (spec.stats_interval_ms <= 0) usage("--stats-interval must be > 0 (ms)");
  }
  if (const auto it = kv.find("sweep-json"); it != kv.end()) {
    opts.sweep_json = it->second;
  }
  if (const auto it = kv.find("log-level"); it != kv.end()) {
    const auto level = parse_log_level(it->second);
    if (!level) usage("unknown log-level");
    set_log_level(*level);
  }
  if (const auto it = kv.find("monitors"); it != kv.end()) {
    const auto mode = obs::parse_monitor_mode(it->second);
    if (!mode) usage("unknown monitors mode (off|record|strict)");
    spec.monitors = *mode;
  }
  if (const auto it = kv.find("backend"); it != kv.end()) {
    const auto names = backend_names();
    if (std::find(names.begin(), names.end(), it->second) == names.end()) {
      // Actionable: name the rejected value AND every value that would work.
      std::string msg = "unknown backend \"" + it->second + "\"; registered backends:";
      for (const auto& name : names) msg += " " + name;
      usage(msg.c_str());
    }
    spec.backend = it->second;
  }
  if (const auto it = kv.find("domain"); it != kv.end()) {
    if (hydra::domain::find(it->second) == nullptr) {
      // Actionable: name the rejected value AND every value that would work.
      const std::string msg = "unknown domain \"" + it->second +
                              "\"; registered domains: " +
                              hydra::domain::known_names();
      usage(msg.c_str());
    }
    spec.domain = it->second;
  }
  // serve/join deployment keys (ignored by run/sweep).
  const auto split_commas = [](const std::string& s) {
    std::vector<std::string> out;
    std::string token;
    std::istringstream in(s);
    while (std::getline(in, token, ',')) out.push_back(token);
    return out;
  };
  if (const auto it = kv.find("party"); it != kv.end()) {
    for (const auto& token : split_commas(it->second)) {
      char* end = nullptr;
      const unsigned long id = std::strtoul(token.c_str(), &end, 10);
      if (end == token.c_str() || *end != '\0') usage("bad --party list");
      opts.local_parties.push_back(static_cast<PartyId>(id));
    }
  }
  if (const auto it = kv.find("peers"); it != kv.end()) {
    opts.peers = split_commas(it->second);
  }
  if (const auto it = kv.find("listen"); it != kv.end()) opts.listen = it->second;
  if (const auto it = kv.find("faults"); it != kv.end()) {
    std::string error;
    const auto plan = faults::parse_fault_plan(it->second, &error);
    if (!plan) usage(("bad --faults: " + error).c_str());
    if (!plan->empty() && plan->max_party() >= spec.params.n) {
      usage("--faults names a party >= n");
    }
    spec.faults = it->second;
  }
  if (const auto it = kv.find("aggregation"); it != kv.end()) {
    if (it->second == "centroid") {
      spec.params.aggregation = protocols::Aggregation::kCentroid;
    } else if (it->second == "midpoint") {
      spec.params.aggregation = protocols::Aggregation::kDiameterMidpoint;
    } else {
      usage("unknown aggregation");
    }
  }

  if (spec.domain != "euclid") {
    // Graph domains: hybrid only (the baselines' thresholds are
    // Euclidean-specific), the domain's required dimension, and a minimum
    // eps of one edge (fractional agreement is meaningless on vertices).
    const auto* dom = hydra::domain::find(spec.domain);
    if (spec.protocol != Protocol::kHybrid) {
      const std::string msg =
          "--domain=" + spec.domain +
          " runs the hybrid protocol only (the sync-lockstep and async-mh "
          "baselines are Euclidean-specific); drop --protocol";
      usage(msg.c_str());
    }
    if (const auto rd = dom->required_dim()) {
      if (kv.count("dim") > 0 && spec.params.dim != *rd) {
        const std::string msg =
            "--domain=" + spec.domain + " values are scalar vertex labels "
            "(dim " + std::to_string(*rd) + "); drop --dim or pass --dim " +
            std::to_string(*rd);
        usage(msg.c_str());
      }
      spec.params.dim = *rd;
    }
    const double min_eps = dom->min_eps();
    if (kv.count("eps") == 0) {
      spec.params.eps = std::max(spec.params.eps, min_eps);
    } else if (spec.params.eps < min_eps) {
      const std::string msg =
          "--domain=" + spec.domain + " needs --eps >= " + fmt(min_eps) +
          " (vertex labels are integers; 1-agreement means adjacent vertices)";
      usage(msg.c_str());
    }
  }

  if (spec.protocol == Protocol::kHybrid) {
    if (spec.domain == "euclid") {
      if (!spec.params.feasible()) {
        usage("params violate (D+1) ts + ta < n (or n <= 3 ts)");
      }
    } else if (!hydra::domain::find(spec.domain)
                    ->feasible(spec.params.n, spec.params.ts, spec.params.ta,
                               spec.params.dim)) {
      const std::string msg = "--domain=" + spec.domain +
                              " needs n > 3 ts and n > 2 ts + ta";
      usage(msg.c_str());
    }
  }
  if (spec.corruptions >= spec.params.n) usage("corrupt must be < n");
  return opts;
}

/// --key value / --key=value pairs for the subcommands that do not go
/// through parse() (report/perf/top). Duplicate keys overwrite — pass
/// multi-valued inputs as one glob/comma value, not repeated flags.
std::map<std::string, std::string> parse_kv(int argc, char** argv) {
  std::map<std::string, std::string> kv;
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) usage("malformed options");
    key = key.substr(2);
    if (const auto eq = key.find('='); eq != std::string::npos) {
      kv[key.substr(0, eq)] = key.substr(eq + 1);
    } else {
      if (i + 1 >= argc) usage("malformed options");
      kv[key] = argv[++i];
    }
  }
  return kv;
}

/// Expands a comma-separated list of paths and/or glob patterns into sorted
/// deduplicated paths. A token that matches nothing is kept literally so the
/// caller's open() produces a file-name-specific error instead of a silent
/// no-op on a typo.
std::vector<std::string> expand_inputs(const std::string& patterns) {
  std::vector<std::string> out;
  std::string token;
  std::istringstream in(patterns);
  while (std::getline(in, token, ',')) {
    if (token.empty()) continue;
    glob_t g{};
    if (::glob(token.c_str(), 0, nullptr, &g) == 0) {
      for (std::size_t i = 0; i < g.gl_pathc; ++i) out.emplace_back(g.gl_pathv[i]);
    } else {
      out.push_back(token);
    }
    ::globfree(&g);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// SIGTERM/SIGINT in serve/join: flush every registered sink (the lock-free
/// flush registry in obs/trace.cpp exists for exactly this handler), then
/// _exit — worker threads are mid-run, so running static destructors under
/// them would race. The partial trace stays valid JSONL (line-buffered, so
/// no torn lines) and merges with the surviving processes' traces; the
/// missing `end` marker is how the merge knows this process was killed.
extern "C" void flush_and_exit(int /*signal*/) {
  obs::flush_all_sinks();
  std::_Exit(130);
}

int cmd_run(const Options& opts) {
  const auto result = execute(opts.spec);
  Table table({"metric", "value"});
  table.row({"protocol", to_string(opts.spec.protocol)});
  table.row({"network", to_string(opts.spec.network)});
  table.row({"adversary", to_string(opts.spec.adversary) + " x" +
                              std::to_string(opts.spec.corruptions)});
  table.row({"live", fmt_ok(result.verdict.live)});
  table.row({"valid", fmt_ok(result.verdict.valid)});
  table.row({"agree", fmt_ok(result.verdict.agreed)});
  table.row({"output diameter", fmt(result.verdict.output_diameter)});
  table.row({"input diameter", fmt(result.input_diameter)});
  table.row({"rounds (Delta)", fmt(result.rounds)});
  table.row({"messages", fmt(result.messages)});
  table.row({"bytes", fmt(result.bytes)});
  table.row({"T estimates", fmt(result.min_estimate) + ".." + fmt(result.max_estimate)});
  table.row({"max msgs by one party", fmt(result.max_sent_by_party)});
  table.row({"safe-area fallbacks", fmt(result.safe_area_fallbacks)});
  // Only non-default backends/domains get extra rows: the default table is
  // part of the byte-identity contract for recorded runs.
  if (opts.spec.domain != "euclid") table.row({"domain", opts.spec.domain});
  if (opts.spec.backend != "sim") {
    table.row({"backend", opts.spec.backend});
    table.row({"wall clock (ms)", std::to_string(result.wall_ms)});
    if (result.timed_out) {
      table.row({"timed out", result.timeout_detail.empty()
                                  ? "YES"
                                  : "YES: " + result.timeout_detail});
    }
    if (opts.spec.backend == "tcp" || opts.spec.backend == "uds") {
      // Hardened-ingress counters: nonzero means a peer sent frames that
      // failed the authenticated-sender or decode checks.
      table.row({"frames auth-dropped", fmt(result.frames_auth_dropped)});
      table.row({"frames decode-dropped", fmt(result.frames_decode_dropped)});
    }
  }
  if (!opts.spec.faults.empty()) {
    table.row({"faults", opts.spec.faults});
    table.row({"fault drops", fmt(result.fault_drops)});
    table.row({"fault dups", fmt(result.fault_dups)});
    table.row({"fault delays", fmt(result.fault_delays)});
  }
  if (opts.spec.monitors != obs::MonitorMode::kOff) {
    table.row({"monitors", obs::to_string(opts.spec.monitors)});
    table.row({"monitor violations", fmt(result.monitor_violations)});
    if (result.monitor_aborted) table.row({"monitor abort", "STRICT ABORT"});
  }
  table.print();
  if (result.monitor_violations > 0) {
    std::printf("\ninvariant violations:\n");
    for (const auto& v : result.violations) {
      std::printf("  t=%lld party=%u it=%u cause=%llu [%s] %s\n",
                  static_cast<long long>(v.at), v.party, v.iteration,
                  static_cast<unsigned long long>(v.cause), v.monitor.c_str(),
                  v.detail.c_str());
    }
  }
  return result.verdict.d_aa() && result.monitor_violations == 0 ? 0 : 1;
}

/// serve/join: host --party over real sockets, peers named by --peers. One
/// spec, many processes — each judges (and exits by) its LOCAL parties only.
int cmd_serve(Options opts) {
  auto& spec = opts.spec;
  if (opts.local_parties.empty()) usage("serve/join requires --party I[,J...]");
  if (opts.peers.empty()) usage("serve/join requires --peers A0,...,A(n-1)");
  if (opts.n_given && opts.peers.size() != spec.params.n) {
    usage("--peers must list exactly n endpoints (or omit --n)");
  }
  spec.params.n = opts.peers.size();
  if (!opts.backend_given) spec.backend = "tcp";
  if (spec.backend != "tcp" && spec.backend != "uds") {
    usage("serve/join requires a socket backend (tcp or uds)");
  }
  for (const PartyId id : opts.local_parties) {
    if (id >= spec.params.n) usage("--party id >= n (the --peers count)");
  }
  if (!opts.listen.empty()) {
    if (opts.local_parties.size() != 1) {
      usage("--listen needs exactly one --party (it overrides one endpoint)");
    }
    opts.peers[opts.local_parties.front()] = opts.listen;
  }
  if (spec.backend == "uds") {
    // Parse-time validation: a path past the sockaddr_un::sun_path limit
    // would otherwise die much later in an inscrutable bind/connect failure.
    for (const auto& endpoint : opts.peers) {
      const std::string error = transport::validate_uds_endpoint(endpoint);
      if (!error.empty()) usage(error.c_str());
    }
  }
  spec.socket_endpoints = opts.peers;
  spec.socket_local = opts.local_parties;
  std::signal(SIGTERM, &flush_and_exit);
  std::signal(SIGINT, &flush_and_exit);
  if (spec.protocol == Protocol::kHybrid && !spec.params.feasible()) {
    usage("params violate (D+1) ts + ta < n (or n <= 3 ts) for the --peers count");
  }
  if (spec.corruptions >= spec.params.n) usage("corrupt must be < n");
  return cmd_run(opts);
}

/// bench serve: sustain open-loop multi-instance load on a SOCKET backend in
/// one process (every non-self message crosses the OS) and report
/// instances/sec + decision-latency percentiles, optionally as a
/// hydra-bench-v1 JSON document (--json).
int cmd_bench_serve(const Options& opts) {
  serve::ServeSpec spec;
  spec.params = opts.spec.params;
  spec.workload = opts.spec.workload;
  spec.workload_scale = opts.spec.workload_scale;
  spec.network = opts.spec.network;
  spec.seed = opts.spec.seed;
  spec.monitors = opts.spec.monitors;
  spec.backend = opts.backend_given ? opts.spec.backend : "uds";
  if (spec.backend != "tcp" && spec.backend != "uds") {
    usage("bench serve sustains load on a socket backend (tcp or uds)");
  }
  spec.instances = opts.instances;
  spec.interarrival = opts.interarrival;
  spec.linger = opts.linger;
  spec.us_per_tick = opts.spec.us_per_tick;
  spec.timeout_ms = opts.spec.timeout_ms;
  if (spec.instances == 0) usage("--instances must be >= 1");

  const auto result = serve::run_serve(spec);
  const double wall_s = static_cast<double>(result.wall_ms) / 1000.0;
  const double rate =
      wall_s > 0.0 ? static_cast<double>(result.decided) / wall_s : 0.0;
  const Time p50 = serve::latency_percentile(result, 50.0);
  const Time p99 = serve::latency_percentile(result, 99.0);
  std::printf("bench serve: backend=%s n=%zu instances=%u decided=%u pass=%s\n",
              spec.backend.c_str(), spec.params.n, spec.instances,
              result.decided, result.all_pass ? "yes" : "no");
  std::printf("  instances/sec     %.1f  (wall %.2fs)\n", rate, wall_s);
  std::printf("  decision latency  p50 %lld  p99 %lld  ticks\n",
              static_cast<long long>(p50), static_cast<long long>(p99));
  std::printf("  wire              %llu msgs  %llu bytes  frames/flush %.1f\n",
              static_cast<unsigned long long>(result.messages),
              static_cast<unsigned long long>(result.bytes),
              result.transport_health.flushes > 0
                  ? static_cast<double>(result.transport_health.frames_sent) /
                        static_cast<double>(result.transport_health.flushes)
                  : 0.0);
  std::printf("  slab              slots %zu  live-peak %zu  late-drops %llu\n",
              result.slots_allocated, result.live_peak,
              static_cast<unsigned long long>(result.late_dropped));
  if (spec.monitors != obs::MonitorMode::kOff) {
    std::printf("  monitors          %llu violations\n",
                static_cast<unsigned long long>(result.monitor_violations));
  }

  if (!opts.bench_json.empty()) {
    const double us_per_instance =
        result.decided > 0 ? static_cast<double>(result.wall_ms) * 1000.0 /
                                 static_cast<double>(result.decided)
                           : 0.0;
    const std::vector<BenchMetric> metrics = {
        {"serve." + spec.backend + ".us_per_instance", "us/instance",
         us_per_instance, result.decided},
        {"serve." + spec.backend + ".decision_p99_ticks", "ticks",
         static_cast<double>(p99), result.decided},
    };
    if (!write_bench_json(opts.bench_json, "bench_serve", metrics)) return 1;
  }
  return result.decided == spec.instances && result.all_pass &&
                 result.monitor_violations == 0
             ? 0
             : 1;
}

/// "t.jsonl" -> "t.s7.jsonl"; extensionless paths get the suffix appended.
std::string with_seed_suffix(const std::string& path, std::uint64_t seed) {
  if (path.empty()) return path;
  const std::string suffix = ".s" + std::to_string(seed);
  const auto dot = path.rfind('.');
  const auto slash = path.find_last_of('/');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return path + suffix;
  }
  return path.substr(0, dot) + suffix + path.substr(dot);
}

int cmd_sweep(const Options& opts) {
  // One spec per seed; per-seed output paths keep runs from clobbering each
  // other whatever order the pool finishes them in.
  std::vector<RunSpec> grid;
  grid.reserve(opts.seeds);
  for (std::uint64_t s = 0; s < opts.seeds; ++s) {
    RunSpec spec = opts.spec;
    spec.seed = s + 1;
    spec.trace_out = with_seed_suffix(opts.spec.trace_out, spec.seed);
    spec.metrics_out = with_seed_suffix(opts.spec.metrics_out, spec.seed);
    spec.perf_out = with_seed_suffix(opts.spec.perf_out, spec.seed);
    grid.push_back(std::move(spec));
  }

  const auto results = run_sweep(grid, opts.jobs);

  std::size_t pass = 0;
  std::vector<std::uint64_t> failures;
  std::uint64_t monitor_violations = 0;
  Stats rounds;
  Stats messages;
  Stats diameters;
  Stats estimates;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& result = results[i];
    if (result.verdict.d_aa()) {
      ++pass;
    } else {
      failures.push_back(grid[i].seed);
    }
    monitor_violations += result.monitor_violations;
    rounds.add(result.rounds);
    messages.add(static_cast<double>(result.messages));
    diameters.add(result.verdict.output_diameter);
    estimates.add(static_cast<double>(result.min_estimate));
  }
  std::printf("%zu/%llu runs satisfied D-AA (%zu jobs)\n\n", pass,
              static_cast<unsigned long long>(opts.seeds),
              resolve_jobs(opts.jobs));

  Table table({"metric", "mean", "min", "p50", "p95", "max"});
  const auto nan = std::numeric_limits<double>::quiet_NaN();
  const auto row = [&](const char* name, const Stats& st) {
    table.row({name, fmt(st.mean()), fmt(st.min()),
               fmt(st.percentile(50).value_or(nan)),
               fmt(st.percentile(95).value_or(nan)), fmt(st.max())});
  };
  row("rounds (Delta)", rounds);
  row("messages", messages);
  row("output diameter", diameters);
  row("T estimate (min)", estimates);
  table.print();

  if (!failures.empty()) {
    std::printf("\nfailing seeds:");
    for (auto s : failures) std::printf(" %llu", static_cast<unsigned long long>(s));
    std::printf("\n");
  }
  if (monitor_violations > 0) {
    std::printf("\n%llu invariant-monitor violation(s) across the sweep\n",
                static_cast<unsigned long long>(monitor_violations));
  }
  if (!opts.sweep_json.empty() &&
      !write_sweep_summary_json(opts.sweep_json, grid, results, opts.jobs)) {
    return 1;
  }
  // Exit-code contract (README): any D-AA failure OR any recorded monitor
  // violation makes the sweep exit non-zero, so scripted sweeps can't
  // silently pass.
  return failures.empty() && monitor_violations == 0 ? 0 : 1;
}

int cmd_report(int argc, char** argv) {
  const auto kv = parse_kv(argc, argv);
  const auto trace_path = kv.find("trace");
  const auto merge_glob = kv.find("merge");
  if (trace_path == kv.end() && merge_glob == kv.end()) {
    usage("report requires --trace PATH or --merge GLOB");
  }
  if (trace_path != kv.end() && merge_glob != kv.end()) {
    usage("--trace and --merge are mutually exclusive");
  }

  // --merge: stitch the per-process traces into one timeline (re-evaluating
  // the global monitors when every process completed) and report on THAT.
  // The merged trace replaces the --trace input; the violation gate below
  // makes `hydra report --merge ...` usable directly as a CI check.
  std::string merged;
  std::uint64_t merge_violations = 0;
  std::string source_name;
  if (merge_glob != kv.end()) {
    const auto paths = expand_inputs(merge_glob->second);
    if (paths.empty()) {
      std::fprintf(stderr, "error: --merge '%s' names no files\n",
                   merge_glob->second.c_str());
      return 1;
    }
    const auto result = obs::merge_traces(paths);
    if (!result.ok()) {
      std::fprintf(stderr, "error: trace merge failed: %s\n",
                   result.error.c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "merged %zu trace(s): %zu events, %zu orphan deliver(s), "
                 "%s, %llu violation(s)\n",
                 result.files, result.events, result.orphans,
                 result.reevaluated ? "global monitors re-evaluated"
                                    : "incomplete (no re-evaluation)",
                 static_cast<unsigned long long>(result.violations));
    if (const auto out = kv.find("merged-out"); out != kv.end()) {
      std::ofstream f(out->second);
      if (!f) {
        std::fprintf(stderr, "error: cannot write %s\n", out->second.c_str());
        return 1;
      }
      f << result.merged;
    }
    merged = result.merged;
    merge_violations = result.violations;
    source_name = merge_glob->second;
  } else {
    source_name = trace_path->second;
  }

  std::ifstream trace_file;
  std::istringstream merged_stream(merged);
  if (trace_path != kv.end()) {
    trace_file.open(trace_path->second);
    if (!trace_file) {
      std::fprintf(stderr, "error: cannot read trace %s\n",
                   trace_path->second.c_str());
      return 1;
    }
  }
  std::istream& trace =
      trace_path != kv.end() ? static_cast<std::istream&>(trace_file)
                             : static_cast<std::istream&>(merged_stream);

  std::string metrics;
  if (const auto it = kv.find("metrics"); it != kv.end()) {
    std::ifstream in(it->second);
    if (!in) {
      std::fprintf(stderr, "error: cannot read metrics %s\n", it->second.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    metrics = buffer.str();
  }

  obs::ReportOptions options;
  if (const auto it = kv.find("format"); it != kv.end()) {
    if (it->second == "html") {
      options.format = obs::ReportOptions::Format::kHtml;
    } else if (it->second != "md") {
      usage("unknown format (md|html)");
    }
  }
  if (const auto it = kv.find("title"); it != kv.end()) options.title = it->second;

  const auto render = [&](std::ostream& out) {
    return obs::render_report(trace, metrics, options, out);
  };
  std::size_t events = 0;
  if (const auto it = kv.find("out"); it != kv.end()) {
    std::ofstream out(it->second);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", it->second.c_str());
      return 1;
    }
    events = render(out);
  } else {
    events = render(std::cout);
  }
  if (events == 0) {
    std::fprintf(stderr, "error: no trace events in %s\n", source_name.c_str());
    return 1;
  }
  // Merge mode gates on the GLOBAL verdict: re-evaluated violations (or the
  // surviving per-process ones when a process died) fail the command.
  if (merge_violations > 0) {
    std::fprintf(stderr, "error: %llu invariant violation(s) in merged trace\n",
                 static_cast<unsigned long long>(merge_violations));
    return 1;
  }
  return 0;
}

/// Folds `from` into the accumulated per-phase rows: counts and times sum,
/// min is the min of nonzero mins (0 = "no samples", not "instant"), max is
/// the max of maxes, and the log2 latency buckets add element-wise (their
/// bucket boundaries are position-fixed, so index i always means [2^i,
/// 2^(i+1)) whatever length each file trimmed its trailing zeros to).
void merge_phase_rows(std::map<std::string, harness::PhaseRow>& acc,
                      const std::vector<harness::PhaseRow>& from) {
  for (const auto& row : from) {
    auto& a = acc[row.name];
    if (a.name.empty()) {
      a = row;
      continue;
    }
    a.count += row.count;
    a.total_ns += row.total_ns;
    a.self_ns += row.self_ns;
    if (row.min_ns != 0) {
      a.min_ns = a.min_ns == 0 ? row.min_ns : std::min(a.min_ns, row.min_ns);
    }
    a.max_ns = std::max(a.max_ns, row.max_ns);
    if (a.buckets.size() < row.buckets.size()) {
      a.buckets.resize(row.buckets.size(), 0);
    }
    for (std::size_t i = 0; i < row.buckets.size(); ++i) {
      a.buckets[i] += row.buckets[i];
    }
  }
}

int cmd_perf(int argc, char** argv) {
  const auto kv = parse_kv(argc, argv);

  // Phase-profile mode: render --perf-json documents. Several files (a glob
  // or comma list, e.g. every process of a distributed run or every seed of
  // a sweep) merge into one attribution table.
  if (const auto it = kv.find("input"); it != kv.end()) {
    const auto paths = expand_inputs(it->second);
    if (paths.empty()) {
      std::fprintf(stderr, "error: --input '%s' names no files\n",
                   it->second.c_str());
      return 1;
    }
    std::map<std::string, harness::PhaseRow> acc;
    for (const auto& path : paths) {
      const auto rows = load_perf_json(path);
      if (!rows) {
        std::fprintf(stderr, "error: %s is not a hydra-perf-v1 document\n",
                     path.c_str());
        return 1;
      }
      merge_phase_rows(acc, *rows);
    }
    std::vector<harness::PhaseRow> merged;
    merged.reserve(acc.size());
    for (auto& [name, row] : acc) merged.push_back(std::move(row));
    std::size_t top = 0;
    if (const auto t = kv.find("top"); t != kv.end()) {
      top = static_cast<std::size_t>(std::strtoull(t->second.c_str(), nullptr, 10));
    }
    if (paths.size() > 1) {
      std::printf("merged %zu phase profiles\n", paths.size());
    }
    std::fputs(render_phase_report(std::move(merged), top).c_str(), stdout);
    return 0;
  }

  // Kernel mode: measure the geometry kernels on fixed inputs.
  const auto metrics = measure_geometry_kernels();
  Table table({"kernel", "unit", "value", "repetitions"});
  for (const auto& m : metrics) {
    table.row({m.name, m.unit, fmt(m.value), fmt(m.repetitions)});
  }
  table.print();

  if (const auto it = kv.find("json"); it != kv.end()) {
    if (!write_bench_json(it->second, "geometry", metrics)) return 1;
  }
  if (const auto it = kv.find("baseline"); it != kv.end()) {
    const auto baseline = load_bench_json(it->second);
    if (!baseline) {
      std::fprintf(stderr, "error: %s is not a hydra-bench-v1 document\n",
                   it->second.c_str());
      return 1;
    }
    double budget = 0.10;
    if (const auto b = kv.find("budget"); b != kv.end()) {
      budget = std::strtod(b->second.c_str(), nullptr);
    }
    std::vector<std::string> regressions;
    std::printf("\nvs %s (budget %+.0f%%):\n", it->second.c_str(), 100.0 * budget);
    std::fputs(
        render_delta_table(metrics, baseline->metrics, budget, &regressions).c_str(),
        stdout);
    if (!regressions.empty()) {
      std::printf("\nREGRESSION:");
      for (const auto& name : regressions) std::printf(" %s", name.c_str());
      std::printf("\n");
      return 1;
    }
  }
  return 0;
}

/// `hydra top --input stats.jsonl`: the newest hydra-stats-v1 heartbeat per
/// process (multi-process runs append to separate files, but merging them
/// with `cat` also works — lines are self-identifying via `proc`), plus
/// per-party progress from those newest lines. Reads a snapshot; re-run it
/// (or `watch hydra top ...`) to follow a live run.
int cmd_top(int argc, char** argv) {
  const auto kv = parse_kv(argc, argv);
  const auto input = kv.find("input");
  if (input == kv.end()) usage("top requires --input STATS_JSONL");

  struct Heartbeat {
    std::map<std::string, std::string> kv;
    std::uint64_t line_no = 0;
  };
  std::map<std::uint64_t, Heartbeat> latest;  ///< by proc tag (0 = untagged)
  std::uint64_t lines = 0;
  std::uint64_t skipped = 0;
  for (const auto& path : expand_inputs(input->second)) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      auto obj = obs::flatjson::parse_object_arrays(line);
      if (obs::flatjson::str(obj, "schema") != "hydra-stats-v1") {
        ++skipped;
        continue;
      }
      ++lines;
      const auto proc = obs::flatjson::unum(obj, "proc");
      auto& slot = latest[proc];
      // Later lines supersede earlier ones per process; file order is
      // emission order within one process by construction.
      slot.kv = std::move(obj);
      slot.line_no = lines;
    }
  }
  if (latest.empty()) {
    std::fprintf(stderr, "error: no hydra-stats-v1 heartbeats in %s%s\n",
                 input->second.c_str(),
                 skipped > 0 ? " (lines present but not parseable)" : "");
    return 1;
  }

  using obs::flatjson::str;
  using obs::flatjson::unum;
  Table procs({"proc", "uptime (s)", "msgs", "bytes", "dropped", "egress q",
               "mailbox q", "decided", "round", "state"});
  for (const auto& [proc, hb] : latest) {
    const auto& o = hb.kv;
    const double ms = std::strtod(str(o, "ms").c_str(), nullptr);
    const std::uint64_t dropped =
        unum(o, "auth_dropped") + unum(o, "decode_dropped");
    procs.row({proc == 0 ? std::string("-") : std::to_string(proc),
               fmt(ms / 1000.0), fmt(unum(o, "messages")), fmt(unum(o, "bytes")),
               fmt(dropped), fmt(unum(o, "egress_depth")),
               fmt(unum(o, "mailbox_depth")), fmt(unum(o, "decided")),
               fmt(unum(o, "round")),
               unum(o, "final") != 0 ? "final" : "live"});
  }
  procs.print();

  Table parties({"party", "proc", "finished", "events", "round"});
  bool any_party = false;
  for (const auto& [proc, hb] : latest) {
    const auto it = hb.kv.find("parties");
    if (it == hb.kv.end()) continue;
    // "[[id,finished,events,round],...]" — flatten and chunk by 4.
    const auto numbers = obs::flatjson::parse_reals(it->second);
    for (std::size_t i = 0; i + 3 < numbers.size(); i += 4) {
      any_party = true;
      parties.row({fmt(numbers[i]),
                   proc == 0 ? std::string("-") : std::to_string(proc),
                   numbers[i + 1] != 0.0 ? "yes" : "no", fmt(numbers[i + 2]),
                   fmt(numbers[i + 3])});
    }
  }
  if (any_party) {
    std::printf("\n");
    parties.print();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  if (command == "list") {
    list_values();
    return 0;
  }
  if (command == "report") return cmd_report(argc, argv);
  if (command == "perf") return cmd_perf(argc, argv);
  if (command == "top") return cmd_top(argc, argv);
  if (command == "bench") {
    // `hydra bench serve [--keys]`: shift argv past "bench" so the shared
    // option parser sees its usual <command> [--key value] shape.
    if (argc < 3 || std::string(argv[2]) != "serve") {
      usage("bench requires a mode: hydra bench serve [--keys]");
    }
    return cmd_bench_serve(parse(argc - 1, argv + 1));
  }
  const auto opts = parse(argc, argv);
  if (command == "run") return cmd_run(opts);
  if (command == "sweep") return cmd_sweep(opts);
  if (command == "serve" || command == "join") return cmd_serve(opts);
  usage("unknown command");
}
