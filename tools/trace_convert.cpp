// trace_convert — JSONL trace to Chrome about://tracing format.
//
//   trace_convert IN.jsonl [OUT.json]
//
// OUT defaults to IN with a ".trace.json" extension. Open the result in
// Chrome (about://tracing, "Load") or https://ui.perfetto.dev. The
// conversion itself lives in obs/convert.hpp so tests can cover it.
#include <cstdio>
#include <fstream>
#include <string>

#include "obs/convert.hpp"

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3) {
    std::fprintf(stderr, "usage: trace_convert IN.jsonl [OUT.json]\n");
    return 2;
  }
  const std::string in_path = argv[1];
  std::string out_path;
  if (argc == 3) {
    out_path = argv[2];
  } else {
    out_path = in_path;
    if (const auto dot = out_path.rfind('.'); dot != std::string::npos) {
      out_path.resize(dot);
    }
    out_path += ".trace.json";
  }

  std::ifstream in(in_path);
  if (!in) {
    std::fprintf(stderr, "trace_convert: cannot read %s\n", in_path.c_str());
    return 1;
  }
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "trace_convert: cannot write %s\n", out_path.c_str());
    return 1;
  }

  const std::size_t events = hydra::obs::chrome_trace_from_jsonl(in, out);
  std::printf("%zu events -> %s\n", events, out_path.c_str());
  return 0;
}
